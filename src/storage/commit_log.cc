#include "storage/commit_log.h"

#include <algorithm>
#include <cassert>

#include "storage/record_store.h"

namespace udr::storage {

CommitSeq CommitLog::Append(MicroTime commit_time, uint32_t origin_replica,
                            std::vector<WriteOp> ops) {
  assert(entries_.empty() || commit_time >= entries_.back().commit_time);
  LogEntry entry;
  entry.seq = LastSeq() + 1;
  entry.commit_time = commit_time;
  entry.origin_replica = origin_replica;
  entry.ops = std::move(ops);
  entries_.push_back(std::move(entry));
  return entries_.back().seq;
}

CommitSeq CommitLog::SeqAtTime(MicroTime t) const {
  // Entries are sorted by commit_time (commit order == time order within one
  // replica). Binary search for the last entry with commit_time <= t.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), t,
      [](MicroTime v, const LogEntry& e) { return v < e.commit_time; });
  if (it == entries_.begin()) return 0;
  return std::prev(it)->seq;
}

void CommitLog::ReplayRange(RecordStore* store, CommitSeq from_seq,
                            CommitSeq to_seq) const {
  assert(to_seq <= LastSeq());
  for (CommitSeq s = from_seq + 1; s <= to_seq; ++s) {
    for (const WriteOp& op : At(s).ops) ApplyWriteOp(store, op);
  }
}

void CommitLog::TruncateAfter(CommitSeq seq) {
  if (seq >= LastSeq()) return;
  entries_.resize(seq);
}

void ApplyWriteOp(RecordStore* store, const WriteOp& op) {
  switch (op.kind) {
    case WriteKind::kUpsertAttr:
      store->SetAttribute(op.key, op.attr_id, op.attribute.value,
                          op.attribute.modified_at, op.attribute.writer);
      break;
    case WriteKind::kRemoveAttr:
      store->RemoveAttribute(op.key, op.attr_id);
      break;
    case WriteKind::kDeleteRecord:
      store->DeleteRecord(op.key);
      break;
  }
}

int64_t WriteOpWireBytes(const WriteOp& op) {
  // key (8) + kind (1) + attr id (4) + modified_at (8) + writer (4) ≈ 25,
  // rounded with framing to 28; upserts add the value payload.
  int64_t bytes = 28;
  if (op.kind == WriteKind::kUpsertAttr) bytes += ValueBytes(op.attribute.value);
  return bytes;
}

}  // namespace udr::storage
