// StorageElement (SE): the unit of storage in the UDR architecture (§2.3,
// §3.4.1). An SE is a shared-nothing group of 2–4 blades holding one primary
// partition copy (and, via the replication layer, secondary copies of other
// partitions) entirely in RAM, with periodic checkpoints to local disk.
//
// Durability model (paper §3.1 + footnote 6):
//   * default: RAM contents are checkpointed to local disk every
//     `checkpoint_period`; an unplanned crash loses every transaction
//     committed after the last checkpoint unless a slave replica already
//     received it;
//   * wal_sync_commit mode: each transaction is forced to disk before commit
//     ("100% guaranteed durability"), at a large per-commit latency penalty —
//     the paper notes this slides the F-R trade-off too far for most
//     providers.

#ifndef UDR_STORAGE_STORAGE_ELEMENT_H_
#define UDR_STORAGE_STORAGE_ELEMENT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "common/time.h"
#include "sim/clock.h"
#include "sim/topology.h"
#include "storage/commit_log.h"
#include "storage/record_store.h"
#include "storage/transaction.h"

namespace udr::storage {

/// Static configuration of one storage element.
struct StorageElementConfig {
  std::string name = "se";
  sim::SiteId site = 0;
  /// Blades forming the SE (2-4; intra-SE redundancy is handled by the
  /// platform and not modelled beyond the capacity figure).
  int blades = 2;
  /// RAM budget for subscriber data. The paper's state-of-the-art figure is
  /// ~200 GB per SE (one partition). Tests use smaller budgets.
  int64_t ram_budget_bytes = 200LL * 1024 * 1024 * 1024;
  /// Checkpoint-to-local-disk period (§3.1 decision 1).
  MicroDuration checkpoint_period = Minutes(5);
  /// Force transactions to disk before commit (footnote 6).
  bool wal_sync_commit = false;

  // -- Service-time model (per indexed single-record operation) --------------
  /// CPU + memory cost of an indexed read on the storage engine.
  MicroDuration read_service_time = Micros(15);
  /// CPU + memory cost of a write (lock, buffer, apply, log append).
  MicroDuration write_service_time = Micros(25);
  /// Additional per-commit cost of a synchronous disk force.
  MicroDuration wal_sync_penalty = Millis(4);
  /// Throughput tax while a checkpoint pass is running, as a fraction of
  /// service time added on average (storage engine "slightly slowed down",
  /// §3.1). Scales inversely with the checkpoint period.
  double checkpoint_overhead_factor = 0.05;
};

/// Result of a crash + local-disk recovery.
struct CrashRecovery {
  MicroTime crash_time = 0;
  CommitSeq last_seq_before_crash = 0;
  CommitSeq recovered_seq = 0;       ///< State recovered from local disk.
  int64_t lost_transactions = 0;     ///< Committed txns lost from RAM.
  MicroDuration data_loss_window = 0;///< Age of the oldest lost commit.
};

/// One storage element: store + commit log + transaction manager + the
/// durability/capacity model.
class StorageElement {
 public:
  StorageElement(StorageElementConfig config, sim::SimClock* clock,
                 uint32_t replica_id = 0);

  const StorageElementConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  sim::SiteId site() const { return config_.site; }
  uint32_t replica_id() const { return replica_id_; }

  RecordStore& store() { return store_; }
  const RecordStore& store() const { return store_; }
  CommitLog& log() { return log_; }
  const CommitLog& log() const { return log_; }
  TransactionManager& txn_manager() { return txn_manager_; }

  /// Opens a transaction on this element.
  Transaction Begin(IsolationLevel iso = IsolationLevel::kReadCommitted) {
    return txn_manager_.Begin(iso);
  }

  // -- Service-time model -----------------------------------------------------

  /// Engine time to serve one indexed read.
  MicroDuration ReadServiceTime() const;
  /// Engine time to execute + commit one write transaction of `ops` writes.
  MicroDuration WriteServiceTime(int ops = 1) const;

  // -- Background streaming load ----------------------------------------------

  /// Charges `service` of engine time to background streaming work (bulk
  /// migration copy / catch-up). The engine serves one stream at a time, so
  /// loads accumulate: a second charge queues behind the first. Foreground
  /// operations arriving before `busy_until` queue behind the stream.
  void AddBackgroundLoad(MicroTime now, MicroDuration service) {
    busy_until_ = std::max(busy_until_, now) + service;
  }
  /// How long a foreground op arriving at `now` waits for in-flight
  /// background streaming work (0 when the engine is idle).
  MicroDuration BackgroundQueueDelay(MicroTime now) const {
    return busy_until_ > now ? busy_until_ - now : 0;
  }
  MicroTime busy_until() const { return busy_until_; }

  // -- Capacity ----------------------------------------------------------------

  /// Remaining RAM budget in bytes.
  int64_t FreeBytes() const { return config_.ram_budget_bytes - store_.ApproxBytes(); }
  /// Checks whether `bytes` more can be stored.
  Status CheckCapacity(int64_t bytes) const;
  /// Estimated subscriber capacity given an average per-record footprint.
  int64_t SubscriberCapacity(int64_t avg_record_bytes) const {
    return config_.ram_budget_bytes / avg_record_bytes;
  }

  // -- Durability --------------------------------------------------------------

  /// Time of the last completed checkpoint at or before `t`.
  MicroTime LastCheckpointTime(MicroTime t) const;
  /// Sequence number captured by the last checkpoint at or before `t`.
  CommitSeq DurableSeqAt(MicroTime t) const;

  /// Simulates an unplanned SE failure at `crash_time` followed by recovery
  /// from local disk only (no remote replica help): RAM state reverts to the
  /// last durable sequence and the log suffix is discarded.
  CrashRecovery CrashAndRecoverLocally(MicroTime crash_time);

  sim::SimClock* clock() const { return clock_; }

 private:
  StorageElementConfig config_;
  sim::SimClock* clock_;
  uint32_t replica_id_;
  RecordStore store_;
  CommitLog log_;
  TransactionManager txn_manager_;
  /// Engine busy horizon from background streaming work (migration).
  MicroTime busy_until_ = 0;
};

}  // namespace udr::storage

#endif  // UDR_STORAGE_STORAGE_ELEMENT_H_
