// Deterministic trace spans over the simulated data path.
//
// The tracer runs entirely on the sim clock (wall clock stays banned in
// src/): span timestamps are sim microseconds and span durations are the
// pipeline's *modelled* latencies, so a trace shows exactly where an op's
// reported latency was spent — resolve, grouped dispatch, replica write/read,
// coalescer park/flush, migration chunk ship, sharded handoff. Sampling is
// seeded and a pure function of (seed, trace id): the same run traces the
// same events every replay, and tracing never perturbs any Rng stream or any
// modelled outcome (a traced run is byte-identical to an untraced one minus
// the trace itself — the overhead gate of bench_obs_overhead).
//
// Thread safety: a Tracer is single-threaded by contract, like the per-shard
// Metrics registries — every shard (worker thread) owns its own Tracer and
// the driver merges them after the join (MergeFrom), the join being the
// happens-before edge. No locks anywhere on the span path.
//
// Export: ExportChromeJson() writes Chrome/Perfetto trace-event JSON
// ("traceEvents" complete events, ph "X"), so a scenario run opens directly
// in a real trace viewer (ui.perfetto.dev / chrome://tracing).

#ifndef UDR_OBS_TRACE_H_
#define UDR_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/clock.h"

namespace udr::obs {

/// Trace identity carried through the data path (on routing::BatchRequest,
/// exec::ShardBatch, migration tasks). POD; an invalid / unsampled context
/// makes every downstream span a no-op.
struct TraceContext {
  uint64_t trace_id = 0;  ///< 0 = no trace.
  uint64_t span_id = 0;   ///< Parent span for children (0 = root).
  bool sampled = false;

  bool active() const { return trace_id != 0 && sampled; }
};

/// One finished (or still-open) span.
struct SpanRecord {
  const char* name = "";  ///< Static stage name ("resolve", "dispatch", ...).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span of its trace.
  MicroTime start = 0;
  MicroTime end = 0;
  uint32_t lane = 0;  ///< Perfetto tid: which tracer recorded it (shard id).
};

class Tracer;

/// RAII handle over one span. A default-constructed Span is a no-op (the
/// unsampled fast path); destruction closes the span at the clock's current
/// time unless EndAt() already closed it at a modelled completion time.
class Span {
 public:
  Span() = default;
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& o) noexcept : tracer_(o.tracer_), index_(o.index_) {
    o.tracer_ = nullptr;
  }
  Span& operator=(Span&& o) noexcept {
    End();
    tracer_ = o.tracer_;
    index_ = o.index_;
    o.tracer_ = nullptr;
    return *this;
  }

  /// Context for child spans; inert when this span is a no-op.
  TraceContext context() const;

  /// Closes at the clock's current sim time. Idempotent.
  void End();
  /// Closes at an explicit (modelled) completion time — the data path
  /// computes latencies without advancing the clock, so stage spans end at
  /// start + modelled cost rather than at Now().
  void EndAt(MicroTime t);

 private:
  friend class Tracer;
  Span(Tracer* tracer, size_t index) : tracer_(tracer), index_(index) {}

  Tracer* tracer_ = nullptr;  ///< nullptr = no-op span.
  size_t index_ = 0;          ///< Into the tracer's span vector.
};

/// Owns the span buffer of one thread of execution.
class Tracer {
 public:
  struct Options {
    /// Fraction of traces sampled, in [0, 1]. The decision is a pure
    /// function of (seed, trace id) — deterministic across replays.
    double sample_rate = 0.0;
    uint64_t seed = 42;
    /// Hard cap on retained spans; the excess is counted, not stored.
    size_t max_spans = 1 << 20;
    /// Perfetto tid of every span this tracer records (per-shard lane).
    uint32_t lane = 0;
  };

  Tracer(Options options, const sim::SimClock* clock);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const Options& options() const { return options_; }

  /// The deterministic sampling decision, usable without a Tracer (the
  /// sharded driver stamps handoff batches with it).
  static bool SampleDecision(uint64_t seed, uint64_t trace_id, double rate);

  /// Allocates the next trace id and decides its sampling fate. Ids are a
  /// plain counter, so replays allocate identical ids in identical order.
  TraceContext StartTrace();

  /// Opens a child span of `parent`; a no-op Span when the parent is
  /// unsampled or the buffer is at capacity.
  Span StartSpan(const char* name, const TraceContext& parent);

  /// Same, but starting at an explicit (modelled) time instead of Now() —
  /// for stages whose modelled start is downstream of already-accounted
  /// cost (a dispatch begins after the resolve stage's cost, though the
  /// clock has not moved).
  Span StartSpanAt(const char* name, const TraceContext& parent,
                   MicroTime start);

  /// Records one already-complete span (park windows, handoff legs — spans
  /// whose start predates the call). Returns its span id (0 when dropped).
  uint64_t RecordSpan(const char* name, const TraceContext& parent,
                      MicroTime start, MicroTime end);

  /// Appends another tracer's spans (the per-shard merge; caller guarantees
  /// the source thread was joined first).
  void MergeFrom(const Tracer& other);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  int64_t dropped() const { return dropped_; }
  int64_t traces_started() const { return next_trace_id_ - 1; }
  int64_t traces_sampled() const { return traces_sampled_; }

  /// Chrome/Perfetto trace-event JSON, events sorted by (ts, lane, span id)
  /// so merged multi-lane output is deterministic.
  std::string ExportChromeJson() const;

 private:
  friend class Span;

  Options options_;
  const sim::SimClock* clock_;
  std::vector<SpanRecord> spans_;
  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  int64_t traces_sampled_ = 0;
  int64_t dropped_ = 0;
};

/// Null-safe span factory: the call sites hold a Tracer* that is nullptr
/// when tracing is off, and a no-op Span costs one branch.
inline Span StartSpan(Tracer* tracer, const char* name,
                      const TraceContext& parent) {
  return tracer != nullptr ? tracer->StartSpan(name, parent) : Span();
}

}  // namespace udr::obs

#endif  // UDR_OBS_TRACE_H_
