#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace udr::obs {

namespace {

/// SplitMix64 finalizer (the same mix common::Rng seeds with): one pass over
/// seed ^ trace_id gives a uniform 64-bit hash, so the sampling decision is
/// deterministic per trace and uncorrelated with any Rng stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

TraceContext Span::context() const {
  if (tracer_ == nullptr) return TraceContext{};
  const SpanRecord& rec = tracer_->spans_[index_];
  return TraceContext{rec.trace_id, rec.span_id, true};
}

void Span::End() {
  if (tracer_ == nullptr) return;
  SpanRecord& rec = tracer_->spans_[index_];
  if (rec.end < rec.start) rec.end = tracer_->clock_->Now();
  if (rec.end < rec.start) rec.end = rec.start;
  tracer_ = nullptr;
}

void Span::EndAt(MicroTime t) {
  if (tracer_ == nullptr) return;
  SpanRecord& rec = tracer_->spans_[index_];
  rec.end = t < rec.start ? rec.start : t;
  tracer_ = nullptr;
}

Tracer::Tracer(Options options, const sim::SimClock* clock)
    : options_(options), clock_(clock) {}

bool Tracer::SampleDecision(uint64_t seed, uint64_t trace_id, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Compare the hash against rate * 2^64 without overflowing: split off the
  // top 11 bits so the product stays in double-exact integer range.
  const uint64_t h = Mix64(seed ^ trace_id);
  const double scaled = rate * 9007199254740992.0;  // rate * 2^53.
  return static_cast<double>(h >> 11) < scaled;
}

TraceContext Tracer::StartTrace() {
  TraceContext ctx;
  ctx.trace_id = next_trace_id_++;
  ctx.span_id = 0;
  ctx.sampled =
      SampleDecision(options_.seed, ctx.trace_id, options_.sample_rate);
  if (ctx.sampled) ++traces_sampled_;
  return ctx;
}

Span Tracer::StartSpan(const char* name, const TraceContext& parent) {
  return StartSpanAt(name, parent, clock_->Now());
}

Span Tracer::StartSpanAt(const char* name, const TraceContext& parent,
                         MicroTime start) {
  if (!parent.active()) return Span();
  if (spans_.size() >= options_.max_spans) {
    ++dropped_;
    return Span();
  }
  SpanRecord rec;
  rec.name = name;
  rec.trace_id = parent.trace_id;
  rec.span_id = next_span_id_++;
  rec.parent_id = parent.span_id;
  rec.start = start;
  rec.end = rec.start - 1;  // "Open" sentinel; End/EndAt fixes it up.
  rec.lane = options_.lane;
  spans_.push_back(rec);
  return Span(this, spans_.size() - 1);
}

uint64_t Tracer::RecordSpan(const char* name, const TraceContext& parent,
                            MicroTime start, MicroTime end) {
  if (!parent.active()) return 0;
  if (spans_.size() >= options_.max_spans) {
    ++dropped_;
    return 0;
  }
  SpanRecord rec;
  rec.name = name;
  rec.trace_id = parent.trace_id;
  rec.span_id = next_span_id_++;
  rec.parent_id = parent.span_id;
  rec.start = start;
  rec.end = end < start ? start : end;
  rec.lane = options_.lane;
  spans_.push_back(rec);
  return rec.span_id;
}

void Tracer::MergeFrom(const Tracer& other) {
  spans_.insert(spans_.end(), other.spans_.begin(), other.spans_.end());
  dropped_ += other.dropped_;
  traces_sampled_ += other.traces_sampled_;
}

std::string Tracer::ExportChromeJson() const {
  std::vector<const SpanRecord*> sorted;
  sorted.reserve(spans_.size());
  for (const SpanRecord& rec : spans_) sorted.push_back(&rec);
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->start != b->start) return a->start < b->start;
              if (a->lane != b->lane) return a->lane < b->lane;
              return a->span_id < b->span_id;
            });

  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  for (size_t i = 0; i < sorted.size(); ++i) {
    const SpanRecord& rec = *sorted[i];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%" PRId64
                  ",\"dur\":%" PRId64
                  ",\"pid\":0,\"tid\":%u,\"args\":{\"trace\":%" PRIu64
                  ",\"span\":%" PRIu64 ",\"parent\":%" PRIu64 "}}%s\n",
                  rec.name, rec.start,
                  rec.end >= rec.start ? rec.end - rec.start : 0, rec.lane,
                  rec.trace_id, rec.span_id, rec.parent_id,
                  i + 1 < sorted.size() ? "," : "");
    out += buf;
  }
  out += "]}\n";
  return out;
}

}  // namespace udr::obs
