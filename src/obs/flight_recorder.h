// FlightRecorder: a bounded ring of recent structured control-plane events.
//
// When an SLO row fails, end-of-run counters say *that* something broke;
// the flight recorder says *what the system was doing* in the sim-seconds
// before the breach — route-resolve failures, cluster drain/restore flips,
// partition split/merge decisions, migration cutovers and failures, SLO
// evaluations. Components record into per-component rings (so a chatty
// component cannot evict another's history); scenario::Engine dumps the
// whole recorder automatically on any SLO failure and scenario::Verifier
// on any audit failure, so a failing scenario ships its own diagnosis.
//
// Scope: control-plane events only — decisions, transitions, evaluations.
// Per-op data-path records belong to trace spans (obs/trace.h); keeping the
// recorder off the hot path keeps its cost independent of throughput.
//
// Determinism: events carry sim timestamps and Dump() iterates components
// in sorted order, so a dump is byte-identical across seeded replays.
//
// Thread safety: none — record from the simulation driver thread only
// (per-shard UdrNf instances each own their shard's recorder, mirroring the
// per-shard Metrics/Tracer ownership).

#ifndef UDR_OBS_FLIGHT_RECORDER_H_
#define UDR_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"

namespace udr::obs {

/// One recorded control-plane event.
struct FlightEvent {
  MicroTime t = 0;
  const char* kind = "";  ///< Static event kind ("cutover", "slo.fail", ...).
  std::string detail;     ///< Free-form context ("partition=3 se=7").
};

class FlightRecorder {
 public:
  /// `capacity` = events retained per component; older ones are evicted.
  explicit FlightRecorder(size_t capacity) : capacity_(capacity) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  size_t capacity() const { return capacity_; }

  /// Records one event under `component` (e.g. "router", "migration").
  /// `kind` must be a static string; `detail` is copied.
  void Record(MicroTime t, const std::string& component, const char* kind,
              std::string detail);

  /// Events currently retained for one component, oldest first.
  std::vector<FlightEvent> Events(const std::string& component) const;

  int64_t total_recorded() const { return total_recorded_; }
  int64_t total_evicted() const { return total_evicted_; }
  /// Events currently retained across all components.
  size_t retained() const;

  /// Human-readable dump, components sorted by name, events oldest first:
  ///   [component] t=<us> <kind> <detail>
  /// Byte-identical across seeded replays.
  std::string Dump() const;

 private:
  /// Fixed-capacity ring of events per component.
  struct Ring {
    std::vector<FlightEvent> events;  ///< Capacity-bounded storage.
    size_t head = 0;                  ///< Oldest retained event.

    size_t size() const { return events.size(); }
    const FlightEvent& at(size_t i) const {
      return events[(head + i) % events.size()];
    }
  };

  size_t capacity_;
  int64_t total_recorded_ = 0;
  int64_t total_evicted_ = 0;
  std::map<std::string, Ring> rings_;
};

}  // namespace udr::obs

#endif  // UDR_OBS_FLIGHT_RECORDER_H_
