#include "obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace udr::obs {

void FlightRecorder::Record(MicroTime t, const std::string& component,
                            const char* kind, std::string detail) {
  ++total_recorded_;
  if (capacity_ == 0) return;
  Ring& ring = rings_[component];
  FlightEvent ev{t, kind, std::move(detail)};
  if (ring.events.size() < capacity_) {
    ring.events.push_back(std::move(ev));
    return;
  }
  ring.events[ring.head] = std::move(ev);
  ring.head = (ring.head + 1) % ring.events.size();
  ++total_evicted_;
}

std::vector<FlightEvent> FlightRecorder::Events(
    const std::string& component) const {
  std::vector<FlightEvent> out;
  auto it = rings_.find(component);
  if (it == rings_.end()) return out;
  out.reserve(it->second.size());
  for (size_t i = 0; i < it->second.size(); ++i) {
    out.push_back(it->second.at(i));
  }
  return out;
}

size_t FlightRecorder::retained() const {
  size_t n = 0;
  for (const auto& [name, ring] : rings_) n += ring.size();
  return n;
}

std::string FlightRecorder::Dump() const {
  std::string out;
  char buf[48];
  for (const auto& [component, ring] : rings_) {
    for (size_t i = 0; i < ring.size(); ++i) {
      const FlightEvent& ev = ring.at(i);
      out += '[';
      out += component;
      std::snprintf(buf, sizeof(buf), "] t=%" PRId64 " ", ev.t);
      out += buf;
      out += ev.kind;
      if (!ev.detail.empty()) {
        out += ' ';
        out += ev.detail;
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace udr::obs
