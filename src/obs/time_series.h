// TimeSeriesSampler: a windowed, sim-time view over the Metrics registry.
//
// End-of-run counters and aggregate histograms answer "what happened"; they
// cannot answer "what was happening when the SLO broke" or feed a control
// loop that reacts to the last few hundred milliseconds. The sampler
// snapshots registered counter values and histogram quantiles every
// `interval` of *sim* time into fixed-size rings, and answers the two
// queries a controller needs: RateOver (counter delta per second over a
// trailing window) and QuantileAt (a histogram percentile as of a sim time).
// This is the substrate the ROADMAP's closed-loop control-plane item
// consumes — size coalesce windows from observed arrival rate, adapt
// migration bandwidth from observed foreground p99.
//
// Determinism: sampling happens at exact interval boundaries of the sim
// clock over a deterministic registry, so Serialize() is byte-identical
// across replays of the same seed (the scenario harness's replay contract).
//
// Thread safety: none — the sampler runs on the simulation driver thread,
// reading the registry through its thread-safe Get() and the single-threaded
// HistOrEmpty() accessor (the driver owns the registry while sampling).

#ifndef UDR_OBS_TIME_SERIES_H_
#define UDR_OBS_TIME_SERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/time.h"
#include "sim/clock.h"

namespace udr::obs {

/// Static configuration of one sampler.
struct TimeSeriesConfig {
  /// Sim time between samples. Must be > 0.
  MicroDuration interval = Millis(100);
  /// Points retained per series; older points fall off the ring.
  size_t ring_capacity = 256;
};

/// One retained sample point.
struct SamplePoint {
  MicroTime t = 0;
  double value = 0.0;
};

class TimeSeriesSampler {
 public:
  TimeSeriesSampler(TimeSeriesConfig config, const Metrics* metrics,
                    const sim::SimClock* clock);

  const TimeSeriesConfig& config() const { return config_; }

  /// Registers a counter to snapshot each tick (cumulative value series).
  void TrackCounter(const std::string& name);
  /// Registers a histogram percentile to snapshot each tick. The series is
  /// keyed (name, percentile); track p50 and p99 as two series.
  void TrackQuantile(const std::string& name, double percentile);

  /// Samples every registered series when the clock reached the next
  /// interval boundary; returns whether a sample was taken. Call on every
  /// driver wake (cheap when not due).
  bool MaybeSample();

  /// When the next sample is due (drivers advance the clock here, like
  /// coalescer window deadlines and migration pacing steps).
  MicroTime NextSampleDue() const { return next_due_; }

  int64_t samples_taken() const { return samples_taken_; }

  /// Counter rate per second over the trailing `window` ending at `now`:
  /// the value delta between the newest retained sample at or before `now`
  /// and the oldest retained sample inside the window, over their actual
  /// time distance. 0 when fewer than two samples land in the window.
  double RateOver(const std::string& counter, MicroDuration window,
                  MicroTime now) const;

  /// The tracked percentile of `name` as of time `t` (the newest sample at
  /// or before `t`; 0 when none is retained that early).
  double QuantileAt(const std::string& name, double percentile,
                    MicroTime t) const;

  /// Points currently retained for a counter series (oldest first; empty
  /// when the name is untracked).
  std::vector<SamplePoint> CounterSeries(const std::string& name) const;
  /// Points currently retained for a quantile series (oldest first).
  std::vector<SamplePoint> QuantileSeries(const std::string& name,
                                          double percentile) const;

  /// Deterministic text form, series sorted by name: one "series <name>"
  /// header plus "t:value" points per line. Byte-identical across replays.
  std::string Serialize() const;

 private:
  /// Fixed-capacity ring of sample points.
  struct Ring {
    std::vector<SamplePoint> points;  ///< Capacity-bounded storage.
    size_t head = 0;                  ///< Oldest retained point.
    int64_t total = 0;                ///< Points ever pushed.

    void Push(const SamplePoint& p, size_t capacity);
    size_t size() const { return points.size(); }
    /// Chronological index: 0 = oldest retained.
    const SamplePoint& at(size_t i) const {
      return points[(head + i) % points.size()];
    }
  };

  struct QuantileKey {
    std::string name;
    double percentile;
    bool operator<(const QuantileKey& o) const {
      if (name != o.name) return name < o.name;
      return percentile < o.percentile;
    }
  };

  /// Newest point at or before `t`; nullptr when none.
  static const SamplePoint* LatestAtOrBefore(const Ring& ring, MicroTime t);

  TimeSeriesConfig config_;
  const Metrics* metrics_;
  const sim::SimClock* clock_;
  MicroTime next_due_;
  int64_t samples_taken_ = 0;
  std::map<std::string, Ring> counters_;
  std::map<QuantileKey, Ring> quantiles_;
};

}  // namespace udr::obs

#endif  // UDR_OBS_TIME_SERIES_H_
