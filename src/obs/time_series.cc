#include "obs/time_series.h"

#include <cinttypes>
#include <cstdio>

namespace udr::obs {

void TimeSeriesSampler::Ring::Push(const SamplePoint& p, size_t capacity) {
  ++total;
  if (capacity == 0) return;
  if (points.size() < capacity) {
    points.push_back(p);
    return;
  }
  points[head] = p;
  head = (head + 1) % points.size();
}

TimeSeriesSampler::TimeSeriesSampler(TimeSeriesConfig config,
                                     const Metrics* metrics,
                                     const sim::SimClock* clock)
    : config_(config), metrics_(metrics), clock_(clock) {
  if (config_.interval <= 0) config_.interval = Millis(100);
  // First sample lands one interval after construction, so a scenario's
  // t=0 state (all zeros) is not a wasted ring slot.
  next_due_ = clock_->Now() + config_.interval;
}

void TimeSeriesSampler::TrackCounter(const std::string& name) {
  counters_.emplace(name, Ring{});
}

void TimeSeriesSampler::TrackQuantile(const std::string& name,
                                      double percentile) {
  quantiles_.emplace(QuantileKey{name, percentile}, Ring{});
}

bool TimeSeriesSampler::MaybeSample() {
  const MicroTime now = clock_->Now();
  if (now < next_due_) return false;
  // One sample per due boundary even if the driver slept past several: the
  // retained points then carry their true (sparser) spacing, which RateOver
  // already handles by dividing by actual time distance.
  const MicroTime t = next_due_;
  while (next_due_ <= now) next_due_ += config_.interval;
  for (auto& [name, ring] : counters_) {
    ring.Push(SamplePoint{t, static_cast<double>(metrics_->Get(name))},
              config_.ring_capacity);
  }
  for (auto& [key, ring] : quantiles_) {
    const Histogram& h = metrics_->HistOrEmpty(key.name);
    ring.Push(SamplePoint{t, static_cast<double>(h.Percentile(key.percentile))},
              config_.ring_capacity);
  }
  ++samples_taken_;
  return true;
}

const SamplePoint* TimeSeriesSampler::LatestAtOrBefore(const Ring& ring,
                                                       MicroTime t) {
  // Points are chronological; walk back from the newest retained point.
  for (size_t i = ring.size(); i > 0; --i) {
    const SamplePoint& p = ring.at(i - 1);
    if (p.t <= t) return &p;
  }
  return nullptr;
}

double TimeSeriesSampler::RateOver(const std::string& counter,
                                   MicroDuration window, MicroTime now) const {
  auto it = counters_.find(counter);
  if (it == counters_.end()) return 0.0;
  const Ring& ring = it->second;
  const SamplePoint* newest = LatestAtOrBefore(ring, now);
  if (newest == nullptr) return 0.0;
  const MicroTime floor = now - window;
  const SamplePoint* oldest = nullptr;
  for (size_t i = 0; i < ring.size(); ++i) {
    const SamplePoint& p = ring.at(i);
    if (p.t >= floor && p.t <= now) {
      oldest = &p;
      break;
    }
  }
  if (oldest == nullptr || oldest->t >= newest->t) return 0.0;
  const double dv = newest->value - oldest->value;
  const double dt_s = ToSeconds(newest->t - oldest->t);
  return dv / dt_s;
}

double TimeSeriesSampler::QuantileAt(const std::string& name, double percentile,
                                     MicroTime t) const {
  auto it = quantiles_.find(QuantileKey{name, percentile});
  if (it == quantiles_.end()) return 0.0;
  const SamplePoint* p = LatestAtOrBefore(it->second, t);
  return p == nullptr ? 0.0 : p->value;
}

std::vector<SamplePoint> TimeSeriesSampler::CounterSeries(
    const std::string& name) const {
  std::vector<SamplePoint> out;
  auto it = counters_.find(name);
  if (it == counters_.end()) return out;
  out.reserve(it->second.size());
  for (size_t i = 0; i < it->second.size(); ++i) out.push_back(it->second.at(i));
  return out;
}

std::vector<SamplePoint> TimeSeriesSampler::QuantileSeries(
    const std::string& name, double percentile) const {
  std::vector<SamplePoint> out;
  auto it = quantiles_.find(QuantileKey{name, percentile});
  if (it == quantiles_.end()) return out;
  out.reserve(it->second.size());
  for (size_t i = 0; i < it->second.size(); ++i) out.push_back(it->second.at(i));
  return out;
}

std::string TimeSeriesSampler::Serialize() const {
  // Values are counters and bucketed percentiles — integers in doubles — so
  // %.6g prints them exactly and byte-stably (the scenario replay contract).
  std::string out;
  char buf[64];
  auto append_points = [&](const Ring& ring) {
    for (size_t i = 0; i < ring.size(); ++i) {
      const SamplePoint& p = ring.at(i);
      std::snprintf(buf, sizeof(buf), " %" PRId64 ":%.6g", p.t, p.value);
      out += buf;
    }
    out += '\n';
  };
  for (const auto& [name, ring] : counters_) {
    out += "series counter ";
    out += name;
    append_points(ring);
  }
  for (const auto& [key, ring] : quantiles_) {
    std::snprintf(buf, sizeof(buf), " p%.6g", key.percentile);
    out += "series quantile ";
    out += key.name;
    out += buf;
    append_points(ring);
  }
  return out;
}

}  // namespace udr::obs
