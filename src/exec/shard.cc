#include "exec/shard.h"

#include <cassert>
#include <utility>
#include <variant>

#include "routing/batch.h"
#include "routing/partition_map.h"
#include "sim/topology.h"

namespace udr::exec {

namespace {

constexpr char kSeqAttr[] = "shard-seq";

}  // namespace

ShardSlicer::ShardSlicer(int num_shards)
    : num_shards_(num_shards < 1 ? 1 : num_shards), factory_(0) {
  // IMSIs are seed-independent, so any factory agrees with the workload's.
  ring_.AddNodes(0, static_cast<uint32_t>(num_shards_));
}

ShardSlicer::ShardSlicer(const routing::PartitionMap* map, int num_shards)
    : num_shards_(num_shards < 1 ? 1 : num_shards), factory_(0), map_(map) {
  // Deal live partitions round-robin across shards in id order: the shard
  // boundary follows the data path's own partition boundary, and the mapping
  // is a pure function of map state (deterministic replay).
  partition_shard_.assign(map_->partition_count(), -1);
  int next = 0;
  for (uint32_t id = 0; id < map_->partition_count(); ++id) {
    if (map_->partition_retired(id)) continue;
    partition_shard_[id] = next++ % num_shards_;
  }
}

int ShardSlicer::ShardOfPartition(uint32_t partition) const {
  return partition < partition_shard_.size() ? partition_shard_[partition] : -1;
}

int ShardSlicer::ShardOf(uint64_t subscriber) const {
  if (num_shards_ <= 1) return 0;
  const location::Identity id{location::IdentityType::kImsi,
                              factory_.ImsiOf(subscriber)};
  if (map_ != nullptr) {
    const int shard = ShardOfPartition(map_->PartitionOfIdentity(id));
    return shard >= 0 ? shard : 0;
  }
  return static_cast<int>(ring_.NodeOfHash(location::HashIdentity(id)));
}

int Shard::ShardOfSubscriber(uint64_t subscriber, int num_shards) {
  return ShardSlicer(num_shards).ShardOf(subscriber);
}

Shard::Shard(int index, int num_shards, const ShardOptions& opts)
    : index_(index), num_shards_(num_shards),
      own_slicer_(std::make_unique<ShardSlicer>(num_shards)),
      slicer_(own_slicer_.get()), opts_(opts), factory_(opts.seed) {}

Shard::Shard(int index, const ShardSlicer* slicer, const ShardOptions& opts)
    : index_(index), num_shards_(slicer->num_shards()), slicer_(slicer),
      opts_(opts), factory_(opts.seed) {}

Shard::~Shard() = default;

void Shard::Provision() {
  // Build the shard's private data-path slice: one site, one blade cluster,
  // its own partitions and replica sets. Nothing here is reachable from any
  // other shard.
  sim::Topology topology(1);
  network_ = std::make_unique<sim::Network>(std::move(topology), &clock_);

  udrnf::UdrConfig config;
  config.replication_factor = opts_.replication_factor;
  config.se_per_cluster = opts_.se_per_cluster;
  config.partitions_per_se = opts_.partitions_per_se;
  // Per-shard tracer: sampling already happened on the driver (batches
  // arrive stamped), but the rate must be non-zero for the UdrNf to build a
  // tracer at all. Lane = shard index keeps merged Perfetto output
  // per-thread.
  config.trace_sample_rate = opts_.trace_sample_rate;
  config.trace_seed = opts_.seed;
  config.trace_lane = static_cast<uint32_t>(index_);
  udr_ = std::make_unique<udrnf::UdrNf>(config, network_.get());
  auto cluster = udr_->AddCluster(0);
  assert(cluster.ok());
  (void)cluster;
  udr_->CommissionPartitions();

  routing::CoalescerConfig wc;
  wc.window = opts_.dispatch_window;
  wc.max_ops = opts_.dispatch_max_ops;
  wc.poa_site = 0;
  window_ = std::make_unique<routing::Coalescer>(wc, &udr_->router(), &clock_,
                                                 &udr_->metrics());

  for (uint64_t sub = 0; sub < opts_.total_subscribers; ++sub) {
    if (slicer_->ShardOf(sub) != index_) continue;
    auto spec = factory_.MakeSpec(sub);
    auto outcome = udr_->CreateSubscriber(spec, 0);
    if (outcome.ok()) ++provisioned_;
  }
  // Let slave copies settle so nearest-preference reads see the profiles.
  clock_.Advance(Seconds(1));
  udr_->CatchUpAllPartitions();
}

location::Identity Shard::IdentityOf(uint64_t subscriber) const {
  return {location::IdentityType::kImsi, factory_.ImsiOf(subscriber)};
}

void Shard::Execute(const ShardBatch& batch) {
  if (batch.ops.empty()) return;
  // The driver stamped the trace before the SPSC push; the span opens here,
  // on this shard's clock, and covers submit-through-flush of the batch
  // (one tick of the shard's dispatch window).
  obs::Span exec_span;
  if (batch.trace.active()) {
    exec_span = obs::StartSpan(udr_->tracer(), "shard.execute", batch.trace);
  }
  routing::BatchRequest req;
  req.trace = exec_span.context().active() ? exec_span.context() : batch.trace;
  for (const ShardOp& op : batch.ops) {
    // Per-key order check: the driver stamps per-subscriber monotonically
    // increasing sequence numbers; seeing a regression here means the
    // handoff reordered operations.
    auto [it, fresh] = last_seq_.try_emplace(op.subscriber, op.seq);
    if (!fresh) {
      if (op.seq <= it->second) ++stats_.order_violations;
      it->second = op.seq;
    }
    if (op.write) {
      routing::Mutation m;
      m.kind = routing::Mutation::Kind::kSet;
      m.attr = kSeqAttr;
      m.value = storage::Value(static_cast<int64_t>(op.seq));
      req.Add(routing::Operation::Write(IdentityOf(op.subscriber), {m}));
    } else {
      req.Add(routing::Operation::ReadAttribute(IdentityOf(op.subscriber),
                                                telecom::attr::kMsisdn));
    }
  }
  stats_.ops += static_cast<int64_t>(batch.ops.size());
  ++stats_.batches;
  pending_.push_back(window_->Submit(std::move(req)));
  clock_.Advance(opts_.tick);
  window_->FlushIfDue();
  CollectOutcomes();
}

void Shard::CollectOutcomes() {
  size_t kept = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    auto outcome = window_->Take(pending_[i]);
    if (!outcome) {
      pending_[kept++] = pending_[i];
      continue;
    }
    const int64_t n = static_cast<int64_t>(outcome->outcomes.size());
    stats_.failed += outcome->failed_ops;
    stats_.ok += n - outcome->failed_ops;
  }
  pending_.resize(kept);
}

void Shard::Drain() {
  window_->FlushNow();
  CollectOutcomes();
  assert(pending_.empty());
}

std::optional<int64_t> Shard::ReadSeq(uint64_t subscriber) {
  routing::BatchRequest req;
  req.Add(routing::Operation::ReadAttribute(
      IdentityOf(subscriber), kSeqAttr,
      replication::ReadPreference::kMasterOnly));
  auto result = udr_->router().RouteBatch(req, 0);
  if (result.outcomes.empty() || !result.outcomes[0].ok()) return std::nullopt;
  const auto& value = result.outcomes[0].value;
  if (!value || !std::holds_alternative<int64_t>(*value)) return std::nullopt;
  return std::get<int64_t>(*value);
}

}  // namespace udr::exec
