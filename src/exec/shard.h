// One shard of the real-concurrency execution mode: a complete, self-owned
// slice of the UDR data path — its own PartitionMap (partitions, replica
// sets, storage elements), its own PoA dispatch window (routing::Coalescer)
// and its own sim clock/network — confined to a single worker thread.
//
// The subscriber space is split by hash: ShardOfSubscriber(i) names the only
// shard that ever touches subscriber i's record, so shards share NOTHING
// mutable except the thread-safe attribute intern pool and the SPSC handoff
// queues in front of them (spsc_queue.h). Per-key operation order is
// preserved end to end: the driver emits per-subscriber monotonically
// increasing sequence numbers, the SPSC ring is FIFO, and the shard executes
// on one thread through the Coalescer, whose flushes preserve per-key order
// across coalesced events.

#ifndef UDR_EXEC_SHARD_H_
#define UDR_EXEC_SHARD_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hash_ring.h"
#include "location/identity.h"
#include "obs/trace.h"
#include "routing/coalescer.h"
#include "sim/clock.h"
#include "sim/network.h"
#include "telecom/subscriber.h"
#include "udr/udr_nf.h"

namespace udr::routing {
class PartitionMap;
}  // namespace udr::routing

namespace udr::exec {

/// Maps subscribers to shards the way the routing layer maps identities to
/// partitions: shards occupy a consistent-hash ring (common::HashRing,
/// vnodes per shard) and a subscriber lands on the shard owning the ring arc
/// of its IMSI's identity hash — the same location::HashIdentity that keys
/// records under hash placement. A shard's subscriber set is therefore a
/// genuine PartitionMap-style ring slice (contiguous arcs, stable under
/// shard-count changes the way ring membership changes are), not an
/// unrelated splitmix64 of the raw index. IMSIs are seed-independent, so the
/// slicer needs no workload seed to agree with every factory.
///
/// Partition-aligned mode (the scenario-harness contract): constructed over a
/// real routing::PartitionMap, the slicer resolves a subscriber to its actual
/// partition and deals live partitions round-robin across shards, so a shard's
/// slice is a union of whole partitions — every subscriber of one partition
/// is owned by exactly one shard, matching the data path's own placement
/// instead of an independent ring. ShardOf() is const and lock-free; a shared
/// slicer is safe across worker threads as long as the map is not mutated
/// (no commissioning / splits / retires) while a run is in flight.
class ShardSlicer {
 public:
  explicit ShardSlicer(int num_shards);
  /// Partition-aligned mode. `map` must be commissioned, outlive the slicer
  /// and stay structurally unmutated while shards execute.
  ShardSlicer(const routing::PartitionMap* map, int num_shards);

  int ShardOf(uint64_t subscriber) const;
  int num_shards() const { return num_shards_; }
  bool partition_aligned() const { return map_ != nullptr; }
  /// Shard owning a partition's whole slice (partition-aligned mode only;
  /// -1 for retired partitions or hash mode).
  int ShardOfPartition(uint32_t partition) const;

 private:
  int num_shards_;
  HashRing ring_;
  telecom::SubscriberFactory factory_;
  const routing::PartitionMap* map_ = nullptr;
  std::vector<int> partition_shard_;  ///< Partition id -> owning shard.
};

/// Per-shard deployment knobs.
struct ShardOptions {
  /// Global subscriber population; each shard provisions the subset hashing
  /// to it.
  uint64_t total_subscribers = 1000;
  uint64_t seed = 42;
  int se_per_cluster = 2;
  int partitions_per_se = 2;
  int replication_factor = 2;
  /// PoA dispatch window of the shard's coalescer: size cap and sim-time
  /// deadline (Execute advances the shard's own clock by `tick` per batch).
  size_t dispatch_max_ops = 64;
  MicroDuration dispatch_window = Micros(200);
  MicroDuration tick = Micros(50);
  /// Trace sampling of handoff batches (0 = tracing off). The DRIVER decides
  /// sampling (Tracer::SampleDecision over this rate and `seed`) and stamps
  /// ShardBatch::trace; each shard's own tracer records the spans on its
  /// private sim clock, lane = shard index.
  double trace_sample_rate = 0.0;
};

/// One operation handed to a shard: a read of the subscriber's profile or a
/// write stamping `seq` into its record. `seq` is per-subscriber
/// monotonically increasing on the driver side — the shard verifies it never
/// observes a regression (per-key order across the handoff).
struct ShardOp {
  bool write = false;
  uint64_t subscriber = 0;
  uint64_t seq = 0;
};

/// The handoff unit: every op in a batch must belong to the same shard.
struct ShardBatch {
  std::vector<ShardOp> ops;
  /// Stamped by the driver before the SPSC push (trace id from the driver's
  /// counter, sampling decided there); the consuming shard's tracer opens
  /// the "shard.execute" span under it, so a trace follows the batch across
  /// the thread handoff.
  obs::TraceContext trace;
};

/// Counters a shard accumulates on its worker thread (read after join).
struct ShardStats {
  int64_t ops = 0;
  int64_t ok = 0;
  int64_t failed = 0;
  int64_t batches = 0;
  int64_t order_violations = 0;
};

class Shard {
 public:
  /// Owning shard of a subscriber (ring-slice mapping; builds a throwaway
  /// ShardSlicer — hot paths hold a long-lived slicer instead).
  static int ShardOfSubscriber(uint64_t subscriber, int num_shards);

  Shard(int index, int num_shards, const ShardOptions& opts);
  /// Shares an externally owned slicer (e.g. ShardRuntime's partition-aligned
  /// one) so provisioning and routing agree on the slice boundary. `slicer`
  /// must outlive the shard.
  Shard(int index, const ShardSlicer* slicer, const ShardOptions& opts);
  ~Shard();

  int index() const { return index_; }

  /// Builds the shard's data-path slice and provisions its subscriber
  /// subset. Call from the worker thread before executing batches.
  void Provision();

  /// Executes one handed-off batch through the shard's dispatch window.
  void Execute(const ShardBatch& batch);

  /// End-of-stream barrier: flushes the dispatch window and collects every
  /// outstanding outcome.
  void Drain();

  const ShardStats& stats() const { return stats_; }
  int64_t provisioned() const { return provisioned_; }
  udrnf::UdrNf& udr() { return *udr_; }

  /// Master-copy read of the subscriber's stamped sequence ("shard-seq"
  /// attribute); nullopt when the subscriber is unknown here or never
  /// written. Post-run verification hook (call after the worker joined).
  std::optional<int64_t> ReadSeq(uint64_t subscriber);

 private:
  void CollectOutcomes();
  location::Identity IdentityOf(uint64_t subscriber) const;

  int index_;
  int num_shards_;
  std::unique_ptr<ShardSlicer> own_slicer_;  ///< Null when sharing one.
  const ShardSlicer* slicer_;
  ShardOptions opts_;
  sim::SimClock clock_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<udrnf::UdrNf> udr_;
  telecom::SubscriberFactory factory_;
  std::unique_ptr<routing::Coalescer> window_;
  std::vector<routing::EventId> pending_;
  std::unordered_map<uint64_t, uint64_t> last_seq_;  ///< Per-key order check.
  ShardStats stats_;
  int64_t provisioned_ = 0;
};

}  // namespace udr::exec

#endif  // UDR_EXEC_SHARD_H_
