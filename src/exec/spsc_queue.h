// Bounded lock-free single-producer/single-consumer ring buffer: the handoff
// queue at the PoA boundary of the sharded execution mode. The driver thread
// (producer) routes each batch to the shard owning its subscribers and pushes
// it here; the shard's worker thread (consumer) pops and executes. One
// producer and one consumer only — that restriction is what lets the ring run
// on two atomic indices with no locks, and it encodes the shard-confinement
// invariant: batches never cross shards except through an explicit handoff.
//
// Concurrency contract (no mutex, so no GUARDED_BY — the discipline is
// role-based and checked two ways):
//   * TryPush() may only ever be called by ONE thread (the producer role),
//     TryPop() only ever by ONE thread (the consumer role). The roles bind
//     to the first thread that calls each side; under UDR_DEADLOCK_CHECK
//     (debug/sanitizer builds) a call from any other thread aborts with a
//     diagnostic — the static analog of the TSan race the violation would
//     eventually cause.
//   * slots_[i] is published producer->consumer by the release store of
//     tail_ and the consumer's acquire load of it; head_ symmetrically
//     returns slot ownership consumer->producer. SizeApprox() is a racy
//     monitoring estimate, callable from anywhere.

#ifndef UDR_EXEC_SPSC_QUEUE_H_
#define UDR_EXEC_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#if defined(UDR_DEADLOCK_CHECK)
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#endif

namespace udr::exec {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (index masking).
  explicit SpscQueue(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the ring is full. Single producer:
  /// the first calling thread owns this side for the queue's lifetime.
  bool TryPush(T&& value) {
#if defined(UDR_DEADLOCK_CHECK)
    CheckOwner(&producer_tid_, "producer (TryPush)");
#endif
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty. Single consumer:
  /// the first calling thread owns this side for the queue's lifetime.
  bool TryPop(T* out) {
#if defined(UDR_DEADLOCK_CHECK)
    CheckOwner(&consumer_tid_, "consumer (TryPop)");
#endif
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate (monitoring only; any thread).
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
#if defined(UDR_DEADLOCK_CHECK)
  static uint64_t ThisThreadId() {
    uint64_t id = static_cast<uint64_t>(
        std::hash<std::thread::id>()(std::this_thread::get_id()));
    return id == 0 ? 1 : id;  // 0 is the "unclaimed" sentinel.
  }

  /// Binds `owner` to the first calling thread; aborts on any other thread.
  static void CheckOwner(std::atomic<uint64_t>* owner, const char* side) {
    const uint64_t me = ThisThreadId();
    uint64_t expected = 0;
    if (owner->compare_exchange_strong(expected, me,
                                       std::memory_order_relaxed) ||
        expected == me) {
      return;
    }
    std::fprintf(stderr,
                 "[udr-spsc-check] SpscQueue %s side used from two threads "
                 "— SPSC contract violation\n",
                 side);
    std::fflush(stderr);
    std::abort();
  }
#endif

  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  ///< Consumer cursor.
  alignas(64) std::atomic<uint64_t> tail_{0};  ///< Producer cursor.
#if defined(UDR_DEADLOCK_CHECK)
  std::atomic<uint64_t> producer_tid_{0};  ///< First TryPush caller.
  std::atomic<uint64_t> consumer_tid_{0};  ///< First TryPop caller.
#endif
};

}  // namespace udr::exec

#endif  // UDR_EXEC_SPSC_QUEUE_H_
