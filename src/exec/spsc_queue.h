// Bounded lock-free single-producer/single-consumer ring buffer: the handoff
// queue at the PoA boundary of the sharded execution mode. The driver thread
// (producer) routes each batch to the shard owning its subscribers and pushes
// it here; the shard's worker thread (consumer) pops and executes. One
// producer and one consumer only — that restriction is what lets the ring run
// on two atomic indices with no locks, and it encodes the shard-confinement
// invariant: batches never cross shards except through an explicit handoff.

#ifndef UDR_EXEC_SPSC_QUEUE_H_
#define UDR_EXEC_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace udr::exec {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (index masking).
  explicit SpscQueue(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when the ring is full.
  bool TryPush(T&& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate (monitoring only).
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  ///< Consumer cursor.
  alignas(64) std::atomic<uint64_t> tail_{0};  ///< Producer cursor.
};

}  // namespace udr::exec

#endif  // UDR_EXEC_SPSC_QUEUE_H_
