#include "exec/shard_runtime.h"

#include <ctime>

namespace udr::exec {

namespace {

int64_t WallNowNs() {
  timespec ts;
  // lint:allow(wall-clock): throughput REPORTING of the real-concurrency
  // mode measures genuine elapsed time; no simulated behavior depends on it.
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec;
}

int64_t ThreadCpuNowNs() {
  timespec ts;
  // lint:allow(wall-clock): per-worker busy-CPU accounting is real time by
  // design (the CPU-basis scaling gate of bench_sharded_scale rides on it).
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec;
}

}  // namespace

ShardRuntime::ShardRuntime(const ShardRuntimeOptions& opts) : opts_(opts) {
  if (opts_.num_shards < 1) opts_.num_shards = 1;
  slicer_ = opts_.slice_map != nullptr
                ? std::make_unique<ShardSlicer>(opts_.slice_map,
                                                opts_.num_shards)
                : std::make_unique<ShardSlicer>(opts_.num_shards);
  queues_.reserve(opts_.num_shards);
  shards_.resize(opts_.num_shards);
  busy_ns_.assign(opts_.num_shards, 0);
  for (int i = 0; i < opts_.num_shards; ++i) {
    queues_.push_back(std::make_unique<SpscQueue<ShardBatch>>(
        opts_.queue_capacity));
  }
}

ShardRuntime::~ShardRuntime() {
  if (!finished_) Finish();
}

void ShardRuntime::Start() {
  start_wall_ns_ = WallNowNs();
  workers_.reserve(opts_.num_shards);
  for (int i = 0; i < opts_.num_shards; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  // Provisioning barrier: don't let the driver submit into rings whose
  // shards are still being built.
  while (ready_.load(std::memory_order_acquire) < opts_.num_shards) {
    std::this_thread::yield();
  }
}

void ShardRuntime::WorkerLoop(int index) {
  // The Shard is created, provisioned, used and left on this thread —
  // everything it reaches (clock, network, partitions, replica sets,
  // coalescer) is thread-confined. shards_[index] is this worker's slot
  // only; the driver reads it after join.
  // Workers share the runtime's slicer (read-only, lock-free) so every
  // shard provisions and routes against the same slice boundary, including
  // the partition-aligned one.
  shards_[index] = std::make_unique<Shard>(index, slicer_.get(), opts_.shard);
  Shard& shard = *shards_[index];
  shard.Provision();
  ready_.fetch_add(1, std::memory_order_release);

  SpscQueue<ShardBatch>& queue = *queues_[index];
  int64_t busy = 0;
  ShardBatch batch;
  for (;;) {
    if (queue.TryPop(&batch)) {
      const int64_t t0 = ThreadCpuNowNs();
      shard.Execute(batch);
      busy += ThreadCpuNowNs() - t0;
      continue;
    }
    if (done_.load(std::memory_order_acquire)) {
      // End-of-stream is signalled before the final emptiness check, so a
      // batch pushed before done_ was set can't be missed.
      if (queue.TryPop(&batch)) {
        const int64_t t0 = ThreadCpuNowNs();
        shard.Execute(batch);
        busy += ThreadCpuNowNs() - t0;
        continue;
      }
      break;
    }
    std::this_thread::yield();
  }
  const int64_t t0 = ThreadCpuNowNs();
  shard.Drain();
  busy += ThreadCpuNowNs() - t0;
  busy_ns_[index] = busy;
}

void ShardRuntime::Submit(ShardBatch batch, int shard) {
  submitted_ += static_cast<int64_t>(batch.ops.size());
  if (opts_.shard.trace_sample_rate > 0) {
    // Driver-side stamping: trace ids come from one counter across every
    // shard, and the sampling decision is the same pure function the shard
    // tracers use — the handoff carries the decision, it doesn't re-roll it.
    const uint64_t id = ++trace_counter_;
    batch.trace.trace_id = id;
    batch.trace.span_id = 0;
    batch.trace.sampled = obs::Tracer::SampleDecision(
        opts_.shard.seed, id, opts_.shard.trace_sample_rate);
  }
  SpscQueue<ShardBatch>& queue = *queues_[shard];
  while (!queue.TryPush(std::move(batch))) {
    std::this_thread::yield();  // Back-pressure: ring full, consumer behind.
  }
}

const ShardRuntimeReport& ShardRuntime::Finish() {
  if (finished_) return report_;
  done_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  const int64_t wall_ns = WallNowNs() - start_wall_ns_;
  finished_ = true;

  report_ = ShardRuntimeReport{};
  report_.wall_ns = wall_ns;
  report_.ops_submitted = submitted_;
  for (int i = 0; i < opts_.num_shards; ++i) {
    const Shard& shard = *shards_[i];
    ShardReport r;
    r.ops = shard.stats().ops;
    r.ok = shard.stats().ok;
    r.failed = shard.stats().failed;
    r.batches = shard.stats().batches;
    r.order_violations = shard.stats().order_violations;
    r.provisioned = shard.provisioned();
    r.busy_ns = busy_ns_[i];
    report_.ops_done += r.ops;
    report_.ops_failed += r.failed;
    report_.order_violations += r.order_violations;
    report_.aggregate_ops_per_sec += r.ops_per_busy_sec();
    report_.shards.push_back(r);
  }
  if (wall_ns > 0) {
    report_.wall_ops_per_sec =
        report_.ops_done * 1e9 / static_cast<double>(wall_ns);
  }
  report_.ops_per_sec_per_core =
      report_.aggregate_ops_per_sec / opts_.num_shards;
  return report_;
}

void ShardRuntime::MergeMetricsInto(Metrics* out) const {
  for (const auto& shard : shards_) {
    if (shard) out->MergeFrom(shard->udr().metrics());
  }
}

void ShardRuntime::MergeTracersInto(obs::Tracer* out) const {
  for (const auto& shard : shards_) {
    if (shard && shard->udr().tracer() != nullptr) {
      out->MergeFrom(*shard->udr().tracer());
    }
  }
}

}  // namespace udr::exec
