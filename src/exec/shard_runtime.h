// ShardRuntime: the multi-threaded execution mode. N shards, each confined
// to its own worker thread with a private data-path slice (see shard.h), fed
// through one SPSC handoff ring per shard. The driver thread is the single
// producer for every ring; each worker is the single consumer of its own.
//
// Throughput accounting is explicit about cores: each worker measures its
// busy CPU time (CLOCK_THREAD_CPUTIME_ID around Execute/Drain, excluding
// idle polling), and the report derives
//   aggregate_ops_per_sec = sum_i(ops_i / busy_cpu_sec_i)
// — the total service capacity the shards would sustain given a core each.
// On a machine with fewer cores than shards the wall-clock rate
// (wall_ops_per_sec) is lower because shards time-share; both are reported.
// The CPU-time basis is what makes contention visible: any cross-shard
// shared state (a contended lock, a shared allocator arena) inflates
// busy-ns/op and drags the aggregate down even when wall time hides it.

#ifndef UDR_EXEC_SHARD_RUNTIME_H_
#define UDR_EXEC_SHARD_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "exec/shard.h"
#include "exec/spsc_queue.h"
#include "obs/trace.h"

namespace udr::exec {

struct ShardRuntimeOptions {
  int num_shards = 1;
  ShardOptions shard;
  /// Capacity of each shard's SPSC handoff ring (rounded up to a power of
  /// two). A full ring back-pressures the driver (Submit spins with yield).
  size_t queue_capacity = 4096;
  /// When set, shard slices follow this real PartitionMap (partition-aligned
  /// ShardSlicer): a shard owns whole partitions, so the scenario harness can
  /// run sharded with the same placement its single-threaded data path uses.
  /// Must outlive the runtime and stay structurally unmutated (no
  /// commissioning / splits / retires) between Start() and Finish().
  const routing::PartitionMap* slice_map = nullptr;
};

/// Per-shard slice of the final report.
struct ShardReport {
  int64_t ops = 0;
  int64_t ok = 0;
  int64_t failed = 0;
  int64_t batches = 0;
  int64_t order_violations = 0;
  int64_t provisioned = 0;
  int64_t busy_ns = 0;  ///< Worker CPU time spent executing (not idling).
  double ops_per_busy_sec() const {
    return busy_ns > 0 ? ops * 1e9 / static_cast<double>(busy_ns) : 0.0;
  }
};

/// Aggregate outcome of one sharded run.
struct ShardRuntimeReport {
  std::vector<ShardReport> shards;
  int64_t ops_submitted = 0;
  int64_t ops_done = 0;
  int64_t ops_failed = 0;
  int64_t order_violations = 0;
  int64_t wall_ns = 0;  ///< Provision-to-join wall time of the whole run.
  /// End-to-end throughput over wall time (time-shared on few cores).
  double wall_ops_per_sec = 0.0;
  /// Sum of per-shard CPU-time service rates: the capacity with a core per
  /// shard. The scaling gate of bench_sharded_scale runs on this.
  double aggregate_ops_per_sec = 0.0;
  /// aggregate divided by shard count — per-core efficiency; flat across
  /// shard counts means no cross-shard contention.
  double ops_per_sec_per_core = 0.0;
};

/// Owns the worker threads and handoff rings of one sharded run.
///
/// Lifecycle: construct -> Start() -> Submit()* -> Finish() -> report/shard().
class ShardRuntime {
 public:
  explicit ShardRuntime(const ShardRuntimeOptions& opts);
  ~ShardRuntime();

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  /// Spawns the workers; each builds and provisions its own Shard (thread
  /// confinement: the Shard is born and dies on its worker). Blocks until
  /// every shard finished provisioning.
  void Start();

  /// Routes one batch to shard `shard`'s handoff ring. Single-producer: call
  /// only from the driver thread. Spins (with yield) while the ring is full.
  void Submit(ShardBatch batch, int shard);

  /// Owning shard of a subscriber under this runtime's shard count (served
  /// by a long-lived ring slicer — the driver calls this per op).
  int ShardOf(uint64_t subscriber) const { return slicer_->ShardOf(subscriber); }

  /// Signals end-of-stream, joins the workers (each drains its ring and its
  /// dispatch window first) and assembles the report. Idempotent.
  const ShardRuntimeReport& Finish();

  const ShardRuntimeReport& report() const { return report_; }

  /// The shards survive their workers for post-run verification (ReadSeq,
  /// metrics). Valid only after Finish().
  Shard& shard(int i) { return *shards_[i]; }

  /// Every shard's UdrNf metrics merged into one registry (post-Finish).
  void MergeMetricsInto(Metrics* out) const;

  /// Every shard's spans merged into one tracer (post-Finish; the joins are
  /// the happens-before edges). No-op for shards that ran untraced.
  void MergeTracersInto(obs::Tracer* out) const;

 private:
  void WorkerLoop(int index);

  // Concurrency contract (thread confinement, not locks — nothing here is
  // GUARDED_BY because nothing is shared mutable while threads run):
  //   * opts_, slicer_, queues_ are frozen before Start() spawns workers and
  //     only read afterwards (the queue OBJECTS are shared; their internal
  //     SPSC discipline is enforced in spsc_queue.h);
  //   * shards_[i] and busy_ns_[i] are written only by worker i, and read by
  //     the driver only after Finish() joined that worker (the join is the
  //     happens-before edge);
  //   * submitted_, start_wall_ns_, finished_, report_ are driver-thread
  //     only (construct/Submit/Finish all happen on the driver);
  //   * ready_ and done_ are the cross-thread signals, acquire/release.
  ShardRuntimeOptions opts_;
  std::unique_ptr<ShardSlicer> slicer_;  ///< Built once num_shards is final.
  std::vector<std::unique_ptr<SpscQueue<ShardBatch>>> queues_;
  std::vector<std::unique_ptr<Shard>> shards_;  ///< Slot i filled by worker i.
  std::vector<std::thread> workers_;
  std::vector<int64_t> busy_ns_;  ///< Per-worker, written before join.
  std::atomic<int> ready_{0};
  std::atomic<bool> done_{false};
  int64_t submitted_ = 0;   ///< Driver thread only.
  uint64_t trace_counter_ = 0;  ///< Driver thread only (handoff trace ids).
  int64_t start_wall_ns_ = 0;  ///< Driver thread only.
  bool finished_ = false;   ///< Driver thread only.
  ShardRuntimeReport report_;  ///< Driver thread only (post-join).
};

}  // namespace udr::exec

#endif  // UDR_EXEC_SHARD_RUNTIME_H_
