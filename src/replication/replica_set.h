// Replication of one subscriber-data partition across geographically
// disperse storage elements (paper §3.1 decision 2, §3.2, §3.3.1, §5).
//
// Model:
//   * One replica is the *master* copy: all writes execute there and are
//     appended to the authoritative commit log in serialization order.
//   * Slave copies apply the identical entry order ("the serialization order
//     of writes replicated to any slave copy is exactly the same as that
//     imposed by the master copy", §3.2). Application is asynchronous: entry
//     E committed at time T on a master at site S becomes visible on a slave
//     at site S' no earlier than T + one_way_latency(S, S'), and not until
//     any partition between S and S' heals.
//   * On master failure, the most caught-up reachable slave is promoted;
//     acknowledged-but-unreplicated transactions are lost (the async F-A
//     trade-off of §3.3.1) and counted.
//   * SyncMode selects the §5 durability tunings: ASYNC (default),
//     DUAL_SEQUENCE (apply to master then one slave before acking) and
//     QUORUM (Cassandra-style majority ack, the paper's comparator).
//   * PartitionMode selects CAP behaviour on a partition: PREFER_CONSISTENCY
//     (writes fail unless the master is reachable — the paper's default) or
//     PREFER_AVAILABILITY (§5 evolution: any reachable replica accepts
//     writes into a divergence log; ConsistencyRestoration merges after the
//     partition heals).

#ifndef UDR_REPLICATION_REPLICA_SET_H_
#define UDR_REPLICATION_REPLICA_SET_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "sim/network.h"
#include "storage/storage_element.h"

namespace udr::replication {

/// Durability / acknowledgement mode for writes (§3.3.1 and §5).
enum class SyncMode {
  kAsync,         ///< Ack after master commit; slaves catch up later.
  kDualSequence,  ///< Ack after master + one slave applied, in sequence (§5).
  kQuorum,        ///< Ack after a majority of replicas applied (Cassandra-like).
};

/// CAP stance while a network partition separates replicas.
enum class PartitionMode {
  kPreferConsistency,  ///< Writes require the master (paper default, PC).
  kPreferAvailability, ///< Any reachable replica takes writes (§5, PA).
};

/// Conflict resolution policy for consistency restoration (§5).
enum class MergePolicy {
  kFieldMergeLww,        ///< Per-attribute last-writer-wins.
  kLastWriterWinsRecord, ///< Whole record from the latest writer.
  kPreferMaster,         ///< Master wins; divergent values flagged manual.
};

/// Where reads may be served (§3.3.2 vs §3.3.3).
enum class ReadPreference {
  kMasterOnly,  ///< Provisioning System rule: no slave reads.
  kNearest,     ///< Application FE rule: nearest replica, possibly stale.
};

struct ReplicaSetConfig {
  std::string name = "partition-0";
  SyncMode sync_mode = SyncMode::kAsync;
  PartitionMode partition_mode = PartitionMode::kPreferConsistency;
  MergePolicy merge_policy = MergePolicy::kFieldMergeLww;
  /// Time to declare a silent master dead and start failover.
  MicroDuration failover_detection = Seconds(5);
  /// Batching/pipeline delay of the asynchronous log shipper: a committed
  /// entry sits in the master's send buffer this long before leaving. A
  /// master crash inside that window loses the entry — the §3.3.1
  /// durability gap. Zero means ship-at-commit.
  MicroDuration async_ship_delay = 0;
};

/// Outcome of a replicated write.
struct WriteResult {
  Status status;
  MicroDuration latency = 0;     ///< Client-observed latency (or timeout).
  storage::CommitSeq seq = 0;    ///< Authoritative sequence (0 if failed/diverged).
  bool degraded = false;         ///< Dual-sequence fell back to single replica.
  bool diverged = false;         ///< Accepted into a divergence log (AP mode).
  uint32_t served_by = 0;        ///< Replica that executed the write.
};

/// Outcome of a replicated read.
struct ReadResult {
  Status status;
  MicroDuration latency = 0;
  std::optional<storage::Value> value;
  bool stale = false;     ///< Value older than the master's current state.
  uint32_t served_by = 0; ///< Replica that served the read.
};

/// One read of a grouped (batched) partition dispatch.
struct BatchReadOp {
  storage::RecordKey key = 0;
  std::string attr;  ///< Empty: whole-record snapshot.
  ReadPreference pref = ReadPreference::kNearest;
};

/// Outcome of a grouped write: the partition-group commits as one log-append
/// window — one client<->master transit for the whole group instead of one
/// per transaction. Each inner transaction still appends its own log entry
/// (per-key serialization order is preserved) and fails in isolation.
struct GroupWriteResult {
  Status status;  ///< Group admission; first per-op failure otherwise.
  std::vector<WriteResult> per_op;  ///< Latency = engine + sync share only.
  MicroDuration latency = 0;  ///< One transit + summed commit service times.
  MicroDuration transit = 0;  ///< The client<->master share of `latency`.
};

/// Outcome of a grouped read: replicas are probed in one fan-out (transit
/// charged once per group, not once per op).
struct GroupReadResult {
  std::vector<ReadResult> per_op;  ///< Latency = engine service share only.
  /// Whole-record payloads, index-aligned with per_op (ops with a non-empty
  /// attr leave their slot empty and fill per_op[i].value instead).
  std::vector<std::optional<storage::Record>> records;
  MicroDuration latency = 0;  ///< Slowest replica transit + summed service.
  MicroDuration transit = 0;  ///< The slowest-replica share of `latency`.
};

/// Result of a master failover.
struct FailoverReport {
  uint32_t old_master = 0;
  uint32_t new_master = 0;
  storage::CommitSeq acknowledged_seq = 0;  ///< Log head before failover.
  storage::CommitSeq promoted_seq = 0;      ///< New master's applied prefix.
  int64_t lost_transactions = 0;            ///< Acked commits discarded.
};

/// Result of a planned primary-copy migration (scale-out rebalancing). The
/// handoff ships the full authoritative log to the target before switching
/// ownership, so — unlike a failover — no acknowledged write is lost.
struct MigrationReport {
  uint32_t new_master = 0;          ///< Replica id now holding the primary copy.
  bool promoted_existing = false;   ///< Target already hosted a secondary copy.
  int64_t entries_replayed = 0;     ///< Log entries shipped to the target.
  int64_t bytes_moved = 0;          ///< Approx partition state bytes shipped.
  MicroDuration duration = 0;       ///< Modelled bulk-resync time.
};

/// An in-flight chunked primary-copy migration: copy -> catch-up -> cutover.
/// Created by BeginPrimaryMigration, advanced by ShipMigrationChunk (the
/// background scheduler budgets each call against its bandwidth model),
/// finished by CompleteMigration (atomic ownership flip after a final delta
/// replay — no acknowledged write is lost) or AbortMigration (partial target
/// state is discarded; the source stays authoritative). The unit shipped is
/// the commit-log entry, so the target converges on the exact serialization
/// order the master imposed; `snapshot_seq` splits the work into the copy
/// phase (log prefix at Begin) and catch-up (entries committed since).
struct MigrationStream {
  storage::StorageElement* target = nullptr;
  uint32_t expected_master = 0;    ///< Master at Begin; a change aborts the stream.
  bool promote_existing = false;   ///< Target already hosts a secondary copy.
  uint32_t target_replica = 0;     ///< Replica id of that copy (promote path).
  storage::CommitSeq snapshot_seq = 0;  ///< Log head at Begin.
  storage::CommitSeq shipped_seq = 0;   ///< Log prefix already on the target.
  int64_t bytes_moved = 0;         ///< Wire bytes shipped so far.
  int64_t entries_shipped = 0;
  int64_t estimated_bytes = 0;     ///< Begin-time estimate of the total.
  bool finished = false;           ///< Completed or aborted.

  /// Copy phase done: what remains is delta catch-up.
  bool copy_done() const { return shipped_seq >= snapshot_seq; }
};

/// Result of a consistency-restoration pass after a partition heals (§5).
struct RestorationReport {
  int64_t divergent_entries = 0;   ///< Transactions taken on the minority side.
  int64_t applied_ops = 0;         ///< Ops merged into the master view.
  int64_t conflicting_ops = 0;     ///< Ops that raced a majority-side write.
  int64_t dropped_ops = 0;         ///< Conflict losers discarded by the policy.
  int64_t manual_ops = 0;          ///< Conflicts left for human resolution.
};

/// Replication coordinator for one data partition.
class ReplicaSet {
 public:
  /// `elements` are the storage elements hosting the copies, in priority
  /// order: element 0 starts as master copy. All pointers must outlive the
  /// set. The network supplies latency, partitions and the clock.
  ReplicaSet(ReplicaSetConfig config, std::vector<storage::StorageElement*> elements,
             sim::Network* network);

  const ReplicaSetConfig& config() const { return config_; }
  ReplicaSetConfig& mutable_config() { return config_; }
  size_t replica_count() const { return replicas_.size(); }
  uint32_t master_id() const { return master_; }
  sim::SiteId master_site() const;
  sim::SiteId replica_site(uint32_t id) const;
  bool replica_up(uint32_t id) const { return replicas_[id].up; }
  storage::CommitSeq applied_seq(uint32_t id) const;
  const storage::CommitLog& log() const { return log_; }
  const storage::RecordStore& replica_store(uint32_t id) const;
  storage::StorageElement* replica_se(uint32_t id) { return replicas_[id].se; }
  const storage::StorageElement* replica_se(uint32_t id) const {
    return replicas_[id].se;
  }

  // -- Data path ---------------------------------------------------------------

  /// Executes a write transaction (a batch of ops applied atomically) from a
  /// client at `client_site`, honoring sync and partition modes.
  WriteResult Write(sim::SiteId client_site, std::vector<storage::WriteOp> ops);

  /// Executes a group of write transactions as one log-append window: group
  /// admission (failover, reachability, CAP stance) is checked once, each
  /// transaction commits its own log entry in order, and the group pays a
  /// single client<->master transit. When the master path is not cleanly
  /// writable (failover pending, client partitioned) the group degrades to
  /// the per-transaction Write path, keeping its semantics.
  GroupWriteResult WriteBatch(sim::SiteId client_site,
                              std::vector<std::vector<storage::WriteOp>> txns);

  /// Executes a group of reads in one fan-out: each op picks its replica per
  /// its own preference, transit is charged once per group (slowest replica),
  /// and each op pays only its engine service time on top. Per-op failures
  /// (e.g. master-only with the master partitioned) do not poison the group.
  GroupReadResult ReadBatch(sim::SiteId client_site,
                            const std::vector<BatchReadOp>& ops);

  /// Reads one attribute according to the read preference.
  ReadResult ReadAttribute(sim::SiteId client_site, storage::RecordKey key,
                           const std::string& attr, ReadPreference pref);

  /// Reads a whole record snapshot.
  StatusOr<storage::Record> ReadRecord(sim::SiteId client_site,
                                       storage::RecordKey key,
                                       ReadPreference pref,
                                       ReadResult* meta = nullptr);

  // -- Replication maintenance --------------------------------------------------

  /// Applies every log entry whose delivery time has passed to each slave.
  void CatchUpAll();
  /// Catch-up for a single replica.
  void CatchUp(uint32_t id);

  /// Marks a replica as crashed at the current time (RAM contents lost).
  void CrashReplica(uint32_t id);

  /// Brings a crashed replica back: full resync from the authoritative log.
  void RecoverReplica(uint32_t id);

  /// Promotes the most caught-up reachable replica after a master failure.
  StatusOr<FailoverReport> FailOver();

  /// Planned primary-copy handoff to `target` (scale-out rebalancing). When
  /// the target already hosts a secondary copy it is force-synced to the full
  /// log and promoted in place; otherwise the whole partition slice is bulk
  /// resynced from the commit log onto the target, the old primary SE drops
  /// its copy, and the master replica slot is rebound to the target. Either
  /// way every acknowledged write is on the new primary before it takes
  /// ownership. Fails when the current master is down (fail over first) or
  /// the target is unreachable from the master's site. Implemented as a
  /// one-shot MigrationStream (Begin + Complete): the bulk path and the
  /// background scheduler's throttled path share one machinery.
  StatusOr<MigrationReport> MigratePrimaryTo(storage::StorageElement* target);

  // -- Chunked primary-copy migration (background scheduler) --------------------

  /// Opens a chunked migration stream toward `target` (see MigrationStream).
  /// Performs the same admission as MigratePrimaryTo: master up, target
  /// reachable, capacity checked against the target's RAM budget.
  StatusOr<MigrationStream> BeginPrimaryMigration(storage::StorageElement* target);

  /// Ships the next slice of the stream: at least one log entry, then up to
  /// `max_bytes` of entry payload. Charges the streaming work to both ends'
  /// engine busy horizons (foreground ops queue behind it). Returns the wire
  /// bytes shipped (0 when the target is fully caught up to the log head).
  /// Fails — leaving the source authoritative — when the master changed,
  /// crashed, or lost the target.
  StatusOr<int64_t> ShipMigrationChunk(MigrationStream* stream, int64_t max_bytes);

  /// Entries committed but not yet on the target (0 = ready for cutover).
  int64_t MigrationLag(const MigrationStream& stream) const {
    return static_cast<int64_t>(log_.LastSeq() - stream.shipped_seq);
  }

  /// Atomic cutover: ships the remaining delta, then flips the master slot
  /// to the target (promoting the secondary in place, or rebinding the slot
  /// and dropping the old primary's slice). Every acknowledged write is on
  /// the new primary before it takes ownership.
  StatusOr<MigrationReport> CompleteMigration(MigrationStream* stream);

  /// Cancels the stream: partial state shipped to a fresh target is deleted;
  /// a promote-path target keeps its (valid) early entries. The source
  /// remains authoritative; no map state changed.
  void AbortMigration(MigrationStream* stream);

  /// Approximate wire bytes of the replication stream after sequence `after`
  /// (the planner's transfer-size estimate for a migration).
  int64_t ApproxStreamBytes(storage::CommitSeq after = 0) const;

  /// Merges all divergence logs after a partition heals (§5) and resyncs
  /// every replica to the merged state.
  RestorationReport RestoreConsistency();

  /// True if any replica holds divergent writes.
  bool HasDivergence() const;

  /// Forces every up replica to the full log (test/maintenance helper that
  /// ignores delivery horizons).
  void ForceSyncAll();

  // -- Introspection ------------------------------------------------------------

  int64_t writes_accepted() const { return writes_accepted_; }
  int64_t writes_rejected() const { return writes_rejected_; }
  int64_t reads_served() const { return reads_served_; }
  int64_t stale_reads() const { return stale_reads_; }
  int64_t degraded_commits() const { return degraded_commits_; }
  int64_t diverged_writes() const { return diverged_writes_; }

 private:
  struct Replica {
    storage::StorageElement* se = nullptr;
    storage::CommitSeq applied = 0;
    bool up = true;
    MicroTime down_since = 0;
    sim::IntervalSet outages;       ///< Closed crash intervals (RAM lost).
    storage::CommitLog divergence;  ///< AP-mode writes taken while split.
  };

  MicroTime Now() const { return network_->Now(); }

  /// Delivery time of log entry `seq` at replica `id`, honoring partitions
  /// and origin crashes. An entry leaves its origin's RAM at
  /// HealTime(origin, target, commit_time); if the origin crashed before
  /// that moment the copy is lost at the source and can only re-ship from
  /// the current master after a failover. Returns kTimeInfinity while no
  /// surviving copy can ship it.
  MicroTime EntryDeliveryTime(storage::CommitSeq seq, uint32_t id) const;

  /// Applies entry `seq` to the replica's store.
  void ApplyEntry(Replica* r, storage::CommitSeq seq);

  /// Deletes every record this partition's log (and the replica's divergence
  /// log) ever touched from the replica's store, leaving co-hosted
  /// partitions' records intact. Used before a full resync.
  void DropPartitionKeys(Replica* r) const;

  /// Finds the replica that should serve a read for the client.
  StatusOr<uint32_t> PickReadReplica(sim::SiteId client_site, ReadPreference pref);

  /// Executes a write on the master copy (assumes reachability was checked).
  WriteResult WriteOnMaster(sim::SiteId client_site,
                            std::vector<storage::WriteOp> ops);

  /// Commits one transaction on the master copy. Latency covers the engine
  /// service time and synchronous replication only — the caller adds the
  /// client transit (once per op, or once per group for WriteBatch).
  WriteResult CommitOnMaster(std::vector<storage::WriteOp> ops);

  /// Reads one attribute on replica `id` (already caught up); accounts the
  /// engine service time, staleness and payload into `out`. No transit.
  void ReadAttrOn(uint32_t id, storage::RecordKey key, const std::string& attr,
                  ReadResult* out);

  /// Whole-record counterpart of ReadAttrOn; returns the store's record (or
  /// nullptr) and fills `meta` when non-null.
  const storage::Record* ReadRecordOn(uint32_t id, storage::RecordKey key,
                                      ReadResult* meta);

  /// Executes a divergent write on a reachable non-master replica (AP mode).
  WriteResult WriteDiverged(sim::SiteId client_site, uint32_t id,
                            std::vector<storage::WriteOp> ops);

  /// Routes a divergent write to the nearest reachable replica; fills `out`.
  /// Returns true when the write was accepted.
  bool WriteDivergedNearest(sim::SiteId client_site,
                            std::vector<storage::WriteOp> ops, WriteResult* out);

  /// Synchronous replication cost/acks for DUAL_SEQUENCE / QUORUM.
  Status SyncReplicate(storage::CommitSeq seq, MicroDuration* extra_latency,
                       bool* degraded);

  /// Admission re-check for an open migration stream: the master must be the
  /// one that opened it, up, and able to reach the target.
  Status CheckMigrationStream(const MigrationStream& stream) const;

  ReplicaSetConfig config_;
  std::vector<Replica> replicas_;
  sim::Network* network_;
  storage::CommitLog log_;  ///< Authoritative replication stream.
  uint32_t master_ = 0;
  MicroTime last_failover_ = 0;  ///< When the current master took over.

  int64_t writes_accepted_ = 0;
  int64_t writes_rejected_ = 0;
  int64_t reads_served_ = 0;
  int64_t stale_reads_ = 0;
  int64_t degraded_commits_ = 0;
  int64_t diverged_writes_ = 0;
};

}  // namespace udr::replication

#endif  // UDR_REPLICATION_REPLICA_SET_H_
