// Consensus-replicated partition: the paper's §6 future-work alternative to
// master/slave replication ("one promising alternative … lies on efficient
// distributed agreement protocols like e.g. Paxos").
//
// This is a single-decree-pipeline, leader-based protocol in the Raft/
// Multi-Paxos family, specialized to the simulation substrate:
//   * one replica acts as leader for a term; every write is committed only
//     after a majority of replicas (leader included) has applied it —
//     acknowledged data can never be lost;
//   * when the leader crashes or is cut off from a majority, the majority
//     component elects the most up-to-date reachable replica after an
//     election timeout, increments the term, and keeps accepting writes;
//     the minority side refuses writes (no divergence, ever);
//   * reads are served by the leader (linearizable) or, optionally, by any
//     replica (then they carry the same staleness semantics as §3.3.2
//     slave reads).
//
// Compared to the paper's master/slave design this trades commit latency
// (a majority round trip on every write) for zero data loss and automatic
// write availability wherever a majority survives — exactly the trade the
// paper defers to future work.

#ifndef UDR_REPLICATION_CONSENSUS_H_
#define UDR_REPLICATION_CONSENSUS_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "replication/replica_set.h"
#include "sim/network.h"
#include "storage/storage_element.h"

namespace udr::replication {

struct ConsensusConfig {
  std::string name = "consensus-partition";
  /// Silence interval after which followers start an election.
  MicroDuration election_timeout = Seconds(2);
  /// Extra coordination cost of one election (vote round trips).
  MicroDuration election_cost = Millis(50);
};

/// Outcome of a consensus write.
struct ConsensusWriteResult {
  Status status;
  MicroDuration latency = 0;
  storage::CommitSeq seq = 0;
  uint32_t leader = 0;
  uint64_t term = 0;
  bool triggered_election = false;
};

/// One consensus-replicated data partition.
class ConsensusReplicaSet {
 public:
  /// `elements` host the replicas (element 0 starts as leader, term 1).
  ConsensusReplicaSet(ConsensusConfig config,
                      std::vector<storage::StorageElement*> elements,
                      sim::Network* network);

  size_t replica_count() const { return replicas_.size(); }
  uint32_t leader_id() const { return leader_; }
  uint64_t term() const { return term_; }
  int64_t elections() const { return elections_; }
  sim::SiteId leader_site() const { return replicas_[leader_].se->site(); }
  storage::CommitSeq committed_seq() const { return log_.LastSeq(); }
  storage::CommitSeq applied_seq(uint32_t id) const {
    return replicas_[id].applied;
  }
  bool replica_up(uint32_t id) const { return replicas_[id].up; }
  const storage::RecordStore& replica_store(uint32_t id) const {
    return replicas_[id].se->store();
  }
  const storage::CommitLog& log() const { return log_; }

  /// Commits a write set with majority agreement. If the current leader is
  /// unreachable from a surviving majority, an election runs first (costing
  /// election_timeout + election_cost of latency on this call).
  ConsensusWriteResult Write(sim::SiteId client_site,
                             std::vector<storage::WriteOp> ops);

  /// Linearizable read through the leader.
  ReadResult ReadAttribute(sim::SiteId client_site, storage::RecordKey key,
                           const std::string& attr);

  /// Crash / recover a replica (RAM loss is safe: committed entries live on
  /// a majority).
  void CrashReplica(uint32_t id);
  void RecoverReplica(uint32_t id);

  /// Lets followers apply committed entries (heartbeat equivalent).
  void CatchUpAll();

 private:
  struct Replica {
    storage::StorageElement* se = nullptr;
    storage::CommitSeq applied = 0;
    bool up = true;
  };

  MicroTime Now() const { return network_->Now(); }
  size_t Majority() const { return replicas_.size() / 2 + 1; }

  /// Replicas the given replica can currently reach (itself included).
  std::vector<uint32_t> ReachableFrom(uint32_t id) const;

  /// True if `id` can currently assemble a majority.
  bool HasMajority(uint32_t id) const {
    return ReachableFrom(id).size() >= Majority();
  }

  /// Elects the most up-to-date replica inside the majority component
  /// containing `seed`. Returns the new leader id.
  StatusOr<uint32_t> ElectFrom(uint32_t seed);

  void ApplyUpTo(Replica* r, storage::CommitSeq seq);

  ConsensusConfig config_;
  std::vector<Replica> replicas_;
  sim::Network* network_;
  storage::CommitLog log_;
  uint32_t leader_ = 0;
  uint64_t term_ = 1;
  int64_t elections_ = 0;
  int64_t writes_accepted_ = 0;
  int64_t writes_rejected_ = 0;

 public:
  int64_t writes_accepted() const { return writes_accepted_; }
  int64_t writes_rejected() const { return writes_rejected_; }
};

}  // namespace udr::replication

#endif  // UDR_REPLICATION_CONSENSUS_H_
