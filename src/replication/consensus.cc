#include "replication/consensus.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace udr::replication {

using storage::CommitSeq;
using storage::WriteKind;
using storage::WriteOp;

ConsensusReplicaSet::ConsensusReplicaSet(
    ConsensusConfig config, std::vector<storage::StorageElement*> elements,
    sim::Network* network)
    : config_(std::move(config)), network_(network) {
  assert(elements.size() >= 3 && "consensus needs at least 3 replicas");
  replicas_.reserve(elements.size());
  for (auto* se : elements) {
    Replica r;
    r.se = se;
    replicas_.push_back(r);
  }
}

std::vector<uint32_t> ConsensusReplicaSet::ReachableFrom(uint32_t id) const {
  std::vector<uint32_t> out;
  if (!replicas_[id].up) return out;
  sim::SiteId from = replicas_[id].se->site();
  for (uint32_t other = 0; other < replicas_.size(); ++other) {
    if (!replicas_[other].up) continue;
    if (other == id ||
        network_->Reachable(from, replicas_[other].se->site())) {
      out.push_back(other);
    }
  }
  return out;
}

void ConsensusReplicaSet::ApplyUpTo(Replica* r, CommitSeq seq) {
  while (r->applied < seq) {
    CommitSeq next = r->applied + 1;
    for (const WriteOp& op : log_.At(next).ops) {
      storage::ApplyWriteOp(&r->se->store(), op);
    }
    r->applied = next;
  }
}

StatusOr<uint32_t> ConsensusReplicaSet::ElectFrom(uint32_t seed) {
  std::vector<uint32_t> component = ReachableFrom(seed);
  if (component.size() < Majority()) {
    return Status::Unavailable("no majority reachable for election");
  }
  // Vote for the most up-to-date member (highest applied, lowest id ties).
  uint32_t best = component.front();
  for (uint32_t id : component) {
    if (replicas_[id].applied > replicas_[best].applied ||
        (replicas_[id].applied == replicas_[best].applied && id < best)) {
      best = id;
    }
  }
  leader_ = best;
  ++term_;
  ++elections_;
  return best;
}

ConsensusWriteResult ConsensusReplicaSet::Write(sim::SiteId client_site,
                                                std::vector<WriteOp> ops) {
  ConsensusWriteResult out;
  out.term = term_;
  const MicroTime now = Now();

  // Is the current leader alive, reachable from the client, and able to
  // assemble a majority?
  bool leader_serves = replicas_[leader_].up &&
                       network_->Reachable(client_site, leader_site()) &&
                       HasMajority(leader_);
  if (!leader_serves) {
    // The client turns to its nearest reachable replica; if that replica's
    // component holds a majority, it elects a leader and serves.
    int seed = -1;
    MicroDuration best_rtt = 0;
    for (uint32_t id = 0; id < replicas_.size(); ++id) {
      if (!replicas_[id].up) continue;
      if (!network_->Reachable(client_site, replicas_[id].se->site())) continue;
      MicroDuration rtt =
          network_->topology().Rtt(client_site, replicas_[id].se->site());
      if (seed < 0 || rtt < best_rtt) {
        seed = static_cast<int>(id);
        best_rtt = rtt;
      }
    }
    if (seed < 0) {
      ++writes_rejected_;
      out.status = Status::Unavailable("no replica reachable");
      out.latency = network_->rpc_timeout();
      return out;
    }
    auto elected = ElectFrom(static_cast<uint32_t>(seed));
    if (!elected.ok()) {
      ++writes_rejected_;
      out.status = elected.status();
      out.latency = network_->rpc_timeout();
      return out;
    }
    out.triggered_election = true;
    out.latency += config_.election_timeout + config_.election_cost;
    out.term = term_;
  }

  Replica& leader = replicas_[leader_];

  // Stamp and append; replicate to the fastest majority synchronously.
  for (WriteOp& op : ops) {
    if (op.kind == WriteKind::kUpsertAttr) {
      op.attribute.modified_at = now;
      op.attribute.writer = leader_;
    }
  }
  int op_count = static_cast<int>(ops.size());
  CommitSeq seq = log_.Append(now, leader_, std::move(ops));

  std::vector<std::pair<MicroDuration, uint32_t>> followers;
  for (uint32_t id = 0; id < replicas_.size(); ++id) {
    if (id == leader_) continue;
    if (!replicas_[id].up) continue;
    if (!network_->Reachable(leader_site(), replicas_[id].se->site())) continue;
    followers.emplace_back(
        network_->topology().Rtt(leader_site(), replicas_[id].se->site()), id);
  }
  std::sort(followers.begin(), followers.end());
  size_t needed = Majority() - 1;
  if (followers.size() < needed) {
    // Majority evaporated mid-write (election raced a partition change):
    // roll the entry back and reject.
    log_.TruncateAfter(seq - 1);
    ++writes_rejected_;
    out.status = Status::Unavailable("majority lost during commit");
    out.latency += network_->rpc_timeout();
    return out;
  }
  ApplyUpTo(&leader, seq);
  MicroDuration ack_rtt = 0;
  for (size_t i = 0; i < needed; ++i) {
    Replica& f = replicas_[followers[i].second];
    ApplyUpTo(&f, seq);
    ack_rtt = std::max(ack_rtt, followers[i].first);
  }

  out.latency += network_->topology().Rtt(client_site, leader_site()) +
                 network_->topology().HopOverhead() + ack_rtt +
                 leader.se->WriteServiceTime(std::max(op_count, 1));
  out.status = Status::Ok();
  out.seq = seq;
  out.leader = leader_;
  ++writes_accepted_;
  return out;
}

ReadResult ConsensusReplicaSet::ReadAttribute(sim::SiteId client_site,
                                              storage::RecordKey key,
                                              const std::string& attr) {
  ReadResult out;
  if (!replicas_[leader_].up || !HasMajority(leader_)) {
    StatusOr<uint32_t> elected =
        Status::Unavailable("no majority component anywhere");
    for (uint32_t id = 0; id < replicas_.size(); ++id) {
      if (replicas_[id].up && HasMajority(id)) {
        elected = ElectFrom(id);
        break;
      }
    }
    if (!elected.ok()) {
      out.status = elected.status();
      out.latency = network_->rpc_timeout();
      return out;
    }
    out.latency += config_.election_timeout + config_.election_cost;
  }
  if (!network_->Reachable(client_site, leader_site())) {
    out.status = Status::Unavailable("client partitioned from leader");
    out.latency = network_->rpc_timeout();
    return out;
  }
  Replica& leader = replicas_[leader_];
  ApplyUpTo(&leader, log_.LastSeq());
  out.latency += network_->topology().Rtt(client_site, leader_site()) +
                 network_->topology().HopOverhead() +
                 leader.se->ReadServiceTime();
  const storage::Record* rec = leader.se->store().Find(key);
  const storage::Attribute* a = rec ? rec->Find(attr) : nullptr;
  if (a == nullptr) {
    out.status = Status::NotFound("attribute " + attr);
    return out;
  }
  out.status = Status::Ok();
  out.value = a->value;
  out.served_by = leader_;
  return out;
}

void ConsensusReplicaSet::CrashReplica(uint32_t id) {
  replicas_[id].up = false;
  // Committed state lives on a majority; nothing else to do. The log keeps
  // only majority-acknowledged entries, so no truncation ever happens.
}

void ConsensusReplicaSet::RecoverReplica(uint32_t id) {
  Replica& r = replicas_[id];
  r.up = true;
  // Re-fetch the committed log from the leader (its own RAM is gone).
  std::unordered_set<storage::RecordKey> keys;
  for (const auto& entry : log_.entries()) {
    for (const auto& op : entry.ops) keys.insert(op.key);
  }
  for (auto key : keys) r.se->store().DeleteRecord(key);
  r.applied = 0;
  ApplyUpTo(&r, log_.LastSeq());
}

void ConsensusReplicaSet::CatchUpAll() {
  for (auto& r : replicas_) {
    if (r.up) ApplyUpTo(&r, log_.LastSeq());
  }
}

}  // namespace udr::replication
