#include "replication/replica_set.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_set>

namespace udr::replication {

using storage::CommitSeq;
using storage::LogEntry;
using storage::Record;
using storage::RecordKey;
using storage::Value;
using storage::WriteKind;
using storage::WriteOp;

ReplicaSet::ReplicaSet(ReplicaSetConfig config,
                       std::vector<storage::StorageElement*> elements,
                       sim::Network* network)
    : config_(std::move(config)), network_(network) {
  assert(!elements.empty());
  replicas_.reserve(elements.size());
  for (auto* se : elements) {
    Replica r;
    r.se = se;
    replicas_.push_back(std::move(r));
  }
}

sim::SiteId ReplicaSet::master_site() const {
  return replicas_[master_].se->site();
}

sim::SiteId ReplicaSet::replica_site(uint32_t id) const {
  return replicas_[id].se->site();
}

CommitSeq ReplicaSet::applied_seq(uint32_t id) const {
  return replicas_[id].applied;
}

const storage::RecordStore& ReplicaSet::replica_store(uint32_t id) const {
  return replicas_[id].se->store();
}

MicroTime ReplicaSet::EntryDeliveryTime(CommitSeq seq, uint32_t id) const {
  const LogEntry& e = log_.At(seq);
  const Replica& origin = replicas_[e.origin_replica];
  sim::SiteId origin_site = origin.se->site();
  sim::SiteId target_site = replicas_[id].se->site();
  const auto& partitions = network_->partitions();

  // When does the entry actually leave the origin's RAM toward `id`? The
  // shipper batches for async_ship_delay, and a partition makes the origin
  // buffer the entry until the link heals.
  MicroTime send_at = partitions.HealTime(
      origin_site, target_site, e.commit_time + config_.async_ship_delay);
  bool origin_lost_it =
      origin.outages.OutageWithin(e.commit_time, send_at + 1) > 0 ||
      (!origin.up && origin.down_since <= send_at);
  if (!origin_lost_it) {
    return send_at + network_->topology().OneWayLatency(origin_site,
                                                        target_site);
  }
  // The origin died with the entry still buffered. If the entry survived the
  // failover truncation it lives on the current master, which re-ships it.
  if (e.origin_replica == master_) {
    return kTimeInfinity;  // No surviving copy can ship it (yet).
  }
  sim::SiteId master_s = replicas_[master_].se->site();
  MicroTime base = std::max(e.commit_time, last_failover_);
  MicroTime resend_at = partitions.HealTime(master_s, target_site, base);
  return resend_at + network_->topology().OneWayLatency(master_s, target_site);
}

void ReplicaSet::ApplyEntry(Replica* r, CommitSeq seq) {
  for (const WriteOp& op : log_.At(seq).ops) {
    storage::ApplyWriteOp(&r->se->store(), op);
  }
  r->applied = seq;
}

void ReplicaSet::CatchUp(uint32_t id) {
  Replica& r = replicas_[id];
  if (!r.up) return;
  if (id == master_) {
    r.applied = log_.LastSeq();
    return;
  }
  while (r.applied < log_.LastSeq()) {
    CommitSeq next = r.applied + 1;
    if (EntryDeliveryTime(next, id) > Now()) break;
    ApplyEntry(&r, next);
  }
}

void ReplicaSet::CatchUpAll() {
  for (uint32_t id = 0; id < replicas_.size(); ++id) CatchUp(id);
}

WriteResult ReplicaSet::Write(sim::SiteId client_site,
                              std::vector<WriteOp> ops) {
  WriteResult out;
  Replica& master = replicas_[master_];

  // Master failure handling: fail over once the detection timeout elapses.
  if (!master.up) {
    if (Now() >= master.down_since + config_.failover_detection) {
      auto fo = FailOver();
      if (!fo.ok()) {
        ++writes_rejected_;
        out.status = fo.status();
        out.latency = network_->rpc_timeout();
        return out;
      }
    } else if (config_.partition_mode == PartitionMode::kPreferAvailability) {
      WriteDivergedNearest(client_site, std::move(ops), &out);
      return out;
    } else {
      ++writes_rejected_;
      out.status = Status::Unavailable("master copy down, failover pending");
      out.latency = network_->rpc_timeout();
      return out;
    }
  }

  // Partition between the client and the master copy.
  if (!network_->Reachable(client_site, master_site())) {
    if (config_.partition_mode == PartitionMode::kPreferAvailability) {
      WriteDivergedNearest(client_site, std::move(ops), &out);
      return out;
    }
    ++writes_rejected_;
    out.status = Status::Unavailable(
        "client partitioned from master copy (favoring Consistency)");
    out.latency = network_->rpc_timeout();
    return out;
  }

  return WriteOnMaster(client_site, std::move(ops));
}

bool ReplicaSet::WriteDivergedNearest(sim::SiteId client_site,
                                      std::vector<WriteOp> ops,
                                      WriteResult* out) {
  // Pick the nearest reachable, up replica to act as a temporary master.
  int best = -1;
  MicroDuration best_rtt = 0;
  for (uint32_t id = 0; id < replicas_.size(); ++id) {
    const Replica& r = replicas_[id];
    if (!r.up) continue;
    if (!network_->Reachable(client_site, r.se->site())) continue;
    MicroDuration rtt = network_->topology().Rtt(client_site, r.se->site());
    if (best < 0 || rtt < best_rtt) {
      best = static_cast<int>(id);
      best_rtt = rtt;
    }
  }
  if (best < 0) {
    ++writes_rejected_;
    out->status = Status::Unavailable("no replica reachable for AP write");
    out->latency = network_->rpc_timeout();
    return false;
  }
  *out = WriteDiverged(client_site, static_cast<uint32_t>(best), std::move(ops));
  return out->status.ok();
}

WriteResult ReplicaSet::WriteOnMaster(sim::SiteId client_site,
                                      std::vector<WriteOp> ops) {
  WriteResult out = CommitOnMaster(std::move(ops));
  if (out.status.ok()) {
    out.latency += network_->topology().Rtt(client_site, master_site()) +
                   network_->topology().HopOverhead();
  }
  return out;
}

WriteResult ReplicaSet::CommitOnMaster(std::vector<WriteOp> ops) {
  WriteResult out;
  Replica& master = replicas_[master_];
  const MicroTime now = Now();

  // QUORUM feasibility is checked before committing anything: a write that
  // cannot gather a majority is rejected outright (consistent behaviour).
  if (config_.sync_mode == SyncMode::kQuorum) {
    size_t majority = replicas_.size() / 2 + 1;
    size_t reachable = 1;  // The master itself.
    for (uint32_t id = 0; id < replicas_.size(); ++id) {
      if (id == master_) continue;
      if (replicas_[id].up &&
          network_->Reachable(master_site(), replicas_[id].se->site())) {
        ++reachable;
      }
    }
    if (reachable < majority) {
      ++writes_rejected_;
      out.status = Status::Unavailable("quorum not reachable");
      out.latency = network_->rpc_timeout();
      return out;
    }
  }

  // Stamp write metadata with the commit time and master replica id.
  for (WriteOp& op : ops) {
    if (op.kind == WriteKind::kUpsertAttr) {
      op.attribute.modified_at = now;
      op.attribute.writer = master_;
    }
  }
  // Apply atomically to the master copy and append to the stream.
  for (const WriteOp& op : ops) {
    storage::ApplyWriteOp(&master.se->store(), op);
  }
  int op_count = static_cast<int>(ops.size());
  CommitSeq seq = log_.Append(now, master_, std::move(ops));
  master.applied = seq;

  // A foreground commit queues behind any in-flight background streaming
  // work (migration chunks) on the master's engine.
  MicroDuration latency = master.se->BackgroundQueueDelay(now) +
                          master.se->WriteServiceTime(std::max(op_count, 1));

  MicroDuration sync_extra = 0;
  bool degraded = false;
  Status sync_status = SyncReplicate(seq, &sync_extra, &degraded);
  latency += sync_extra;
  if (degraded) {
    ++degraded_commits_;
    out.degraded = true;
  }
  (void)sync_status;  // Degradation policy: commit stands (paper §5).

  ++writes_accepted_;
  out.status = Status::Ok();
  out.latency = latency;
  out.seq = seq;
  out.served_by = master_;
  return out;
}

GroupWriteResult ReplicaSet::WriteBatch(
    sim::SiteId client_site, std::vector<std::vector<WriteOp>> txns) {
  GroupWriteResult out;
  out.per_op.reserve(txns.size());
  if (txns.empty()) {
    out.status = Status::Ok();
    return out;
  }

  // Group admission: the fast path needs a cleanly writable master. Anything
  // else (failover pending, client partitioned, AP divergence) falls back to
  // the per-transaction Write path, which owns those semantics.
  bool master_path = replicas_[master_].up;
  if (!replicas_[master_].up &&
      Now() >= replicas_[master_].down_since + config_.failover_detection) {
    master_path = FailOver().ok();
  }
  if (master_path && !network_->Reachable(client_site, master_site())) {
    master_path = false;
  }
  if (!master_path) {
    for (auto& ops : txns) {
      WriteResult r = Write(client_site, std::move(ops));
      out.latency += r.latency;
      if (out.status.ok() && !r.status.ok()) out.status = r.status;
      out.per_op.push_back(std::move(r));
    }
    return out;
  }

  // One log-append window: every transaction commits back-to-back on the
  // master copy; the group pays a single client<->master transit.
  out.transit = network_->topology().Rtt(client_site, master_site()) +
                network_->topology().HopOverhead();
  out.latency = out.transit;
  out.status = Status::Ok();
  for (auto& ops : txns) {
    WriteResult r = CommitOnMaster(std::move(ops));
    out.latency += r.latency;
    if (out.status.ok() && !r.status.ok()) out.status = r.status;
    out.per_op.push_back(std::move(r));
  }
  return out;
}

Status ReplicaSet::SyncReplicate(CommitSeq seq, MicroDuration* extra_latency,
                                 bool* degraded) {
  *extra_latency = 0;
  *degraded = false;
  switch (config_.sync_mode) {
    case SyncMode::kAsync:
      return Status::Ok();
    case SyncMode::kDualSequence: {
      // Apply to the first reachable slave, in sequence, before acking (§5:
      // "apply provisioning transactions in sequence to two replicas").
      for (uint32_t id = 0; id < replicas_.size(); ++id) {
        if (id == master_) continue;
        Replica& r = replicas_[id];
        if (!r.up) continue;
        if (!network_->Reachable(master_site(), r.se->site())) continue;
        // Push every entry up to seq synchronously.
        while (r.applied < seq) ApplyEntry(&r, r.applied + 1);
        *extra_latency = network_->topology().Rtt(master_site(), r.se->site()) +
                         r.se->WriteServiceTime();
        return Status::Ok();
      }
      // No slave reachable: leave one replica updated (accepted by §5).
      *degraded = true;
      return Status::Unavailable("no slave reachable for dual-sequence commit");
    }
    case SyncMode::kQuorum: {
      // Gather acks from the fastest slaves until a majority (incl. master).
      size_t majority = replicas_.size() / 2 + 1;
      std::vector<std::pair<MicroDuration, uint32_t>> candidates;
      for (uint32_t id = 0; id < replicas_.size(); ++id) {
        if (id == master_) continue;
        Replica& r = replicas_[id];
        if (!r.up) continue;
        if (!network_->Reachable(master_site(), r.se->site())) continue;
        candidates.emplace_back(
            network_->topology().Rtt(master_site(), r.se->site()), id);
      }
      std::sort(candidates.begin(), candidates.end());
      size_t needed = majority > 0 ? majority - 1 : 0;
      if (candidates.size() < needed) {
        *degraded = true;  // Feasibility was pre-checked; defensive only.
        return Status::Unavailable("quorum lost mid-commit");
      }
      for (size_t i = 0; i < needed; ++i) {
        Replica& r = replicas_[candidates[i].second];
        while (r.applied < seq) ApplyEntry(&r, r.applied + 1);
        *extra_latency = std::max(
            *extra_latency,
            candidates[i].first + r.se->WriteServiceTime());
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown sync mode");
}

WriteResult ReplicaSet::WriteDiverged(sim::SiteId client_site, uint32_t id,
                                      std::vector<WriteOp> ops) {
  WriteResult out;
  Replica& r = replicas_[id];
  const MicroTime now = Now();
  for (WriteOp& op : ops) {
    if (op.kind == WriteKind::kUpsertAttr) {
      op.attribute.modified_at = now;
      op.attribute.writer = id;
    }
  }
  int op_count = static_cast<int>(ops.size());
  for (const WriteOp& op : ops) {
    storage::ApplyWriteOp(&r.se->store(), op);
  }
  r.divergence.Append(now, id, std::move(ops));
  ++diverged_writes_;
  ++writes_accepted_;
  out.status = Status::Ok();
  out.diverged = true;
  out.served_by = id;
  out.latency = network_->topology().Rtt(client_site, r.se->site()) +
                network_->topology().HopOverhead() +
                r.se->WriteServiceTime(std::max(op_count, 1));
  return out;
}

StatusOr<uint32_t> ReplicaSet::PickReadReplica(sim::SiteId client_site,
                                               ReadPreference pref) {
  if (pref == ReadPreference::kMasterOnly) {
    const Replica& m = replicas_[master_];
    if (!m.up) {
      if (Now() >= m.down_since + config_.failover_detection) {
        auto fo = FailOver();
        if (!fo.ok()) return fo.status();
        if (network_->Reachable(client_site, master_site())) return master_;
        return Status::Unavailable("client partitioned from new master");
      }
      return Status::Unavailable("master copy down");
    }
    if (!network_->Reachable(client_site, master_site())) {
      return Status::Unavailable("client partitioned from master copy");
    }
    return master_;
  }
  // Nearest reachable, up replica.
  int best = -1;
  MicroDuration best_rtt = 0;
  for (uint32_t id = 0; id < replicas_.size(); ++id) {
    const Replica& r = replicas_[id];
    if (!r.up) continue;
    if (!network_->Reachable(client_site, r.se->site())) continue;
    MicroDuration rtt = network_->topology().Rtt(client_site, r.se->site());
    if (best < 0 || rtt < best_rtt) {
      best = static_cast<int>(id);
      best_rtt = rtt;
    }
  }
  if (best < 0) return Status::Unavailable("no replica reachable");
  return static_cast<uint32_t>(best);
}

void ReplicaSet::ReadAttrOn(uint32_t id, RecordKey key, const std::string& attr,
                            ReadResult* out) {
  Replica& r = replicas_[id];
  out->served_by = id;
  out->latency += r.se->BackgroundQueueDelay(Now()) + r.se->ReadServiceTime();
  ++reads_served_;

  const Record* rec = r.se->store().Find(key);
  const storage::Attribute* a = rec ? rec->Find(attr) : nullptr;

  // Staleness check against the authoritative (master) copy, §3.3.2: slave
  // reads may observe values the master has already superseded.
  if (id != master_ && replicas_[master_].up) {
    const Record* mrec = replicas_[master_].se->store().Find(key);
    const storage::Attribute* ma = mrec ? mrec->Find(attr) : nullptr;
    bool differs = (a == nullptr) != (ma == nullptr) ||
                   (a != nullptr && ma != nullptr &&
                    !storage::ValueEquals(a->value, ma->value));
    if (differs) {
      out->stale = true;
      ++stale_reads_;
    }
  }

  if (a == nullptr) {
    out->status = Status::NotFound("attribute " + attr);
    return;
  }
  out->status = Status::Ok();
  out->value = a->value;
}

const Record* ReplicaSet::ReadRecordOn(uint32_t id, RecordKey key,
                                       ReadResult* meta) {
  Replica& r = replicas_[id];
  ++reads_served_;
  if (meta != nullptr) {
    meta->served_by = id;
    meta->latency += r.se->BackgroundQueueDelay(Now()) + r.se->ReadServiceTime();
    meta->status = Status::Ok();
    if (id != master_ && replicas_[master_].up) {
      const Record* mine = r.se->store().Find(key);
      const Record* mrec = replicas_[master_].se->store().Find(key);
      bool differs = (mine == nullptr) != (mrec == nullptr) ||
                     (mine != nullptr && mrec != nullptr && !(*mine == *mrec));
      if (differs) {
        meta->stale = true;
        ++stale_reads_;
      }
    }
  }
  return r.se->store().Find(key);
}

ReadResult ReplicaSet::ReadAttribute(sim::SiteId client_site, RecordKey key,
                                     const std::string& attr,
                                     ReadPreference pref) {
  ReadResult out;
  auto picked = PickReadReplica(client_site, pref);
  if (!picked.ok()) {
    out.status = picked.status();
    out.latency = network_->rpc_timeout();
    return out;
  }
  uint32_t id = *picked;
  CatchUp(id);
  out.latency = network_->topology().Rtt(client_site, replica_site(id)) +
                network_->topology().HopOverhead();
  ReadAttrOn(id, key, attr, &out);
  return out;
}

StatusOr<Record> ReplicaSet::ReadRecord(sim::SiteId client_site, RecordKey key,
                                        ReadPreference pref, ReadResult* meta) {
  auto picked = PickReadReplica(client_site, pref);
  if (!picked.ok()) {
    if (meta != nullptr) {
      meta->status = picked.status();
      meta->latency = network_->rpc_timeout();
    }
    return picked.status();
  }
  uint32_t id = *picked;
  CatchUp(id);
  if (meta != nullptr) {
    meta->latency = network_->topology().Rtt(client_site, replica_site(id)) +
                    network_->topology().HopOverhead();
  }
  const Record* rec = ReadRecordOn(id, key, meta);
  if (rec == nullptr) return Status::NotFound("record " + std::to_string(key));
  return *rec;
}

GroupReadResult ReplicaSet::ReadBatch(sim::SiteId client_site,
                                      const std::vector<BatchReadOp>& ops) {
  GroupReadResult out;
  out.per_op.resize(ops.size());
  out.records.resize(ops.size());
  MicroDuration slowest_transit = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    ReadResult& meta = out.per_op[i];
    auto picked = PickReadReplica(client_site, ops[i].pref);
    if (!picked.ok()) {
      // Per-op isolation: this op fails, the group goes on. Its (timed-out)
      // probe overlaps the group fan-out.
      meta.status = picked.status();
      slowest_transit = std::max(slowest_transit, network_->rpc_timeout());
      continue;
    }
    uint32_t id = *picked;
    CatchUp(id);
    slowest_transit = std::max(
        slowest_transit,
        network_->topology().Rtt(client_site, replica_site(id)) +
            network_->topology().HopOverhead());
    if (ops[i].attr.empty()) {
      const Record* rec = ReadRecordOn(id, ops[i].key, &meta);
      if (rec == nullptr) {
        meta.status =
            Status::NotFound("record " + std::to_string(ops[i].key));
      } else {
        out.records[i] = *rec;
      }
    } else {
      ReadAttrOn(id, ops[i].key, ops[i].attr, &meta);
    }
    out.latency += meta.latency;
  }
  out.transit = slowest_transit;
  out.latency += slowest_transit;
  return out;
}

void ReplicaSet::CrashReplica(uint32_t id) {
  Replica& r = replicas_[id];
  r.up = false;
  r.down_since = Now();
}

void ReplicaSet::DropPartitionKeys(Replica* r) const {
  // One storage element hosts several partitions (primary of one, secondary
  // copies of others — Figure 2), so a resync must only touch the keys this
  // partition's log ever wrote, never the whole store.
  std::unordered_set<storage::RecordKey> keys;
  for (const LogEntry& entry : log_.entries()) {
    for (const WriteOp& op : entry.ops) keys.insert(op.key);
  }
  for (const LogEntry& entry : r->divergence.entries()) {
    for (const WriteOp& op : entry.ops) keys.insert(op.key);
  }
  for (storage::RecordKey key : keys) {
    r->se->store().DeleteRecord(key);
  }
}

void ReplicaSet::RecoverReplica(uint32_t id) {
  Replica& r = replicas_[id];
  r.up = true;
  r.outages.Add(r.down_since, Now());
  // RAM contents were lost; resync this partition's slice from the
  // replication stream (peers hold the authoritative state). Entries
  // re-deliver subject to current links.
  DropPartitionKeys(&r);
  r.applied = 0;
  r.divergence.Reset();
  CatchUp(id);
}

StatusOr<FailoverReport> ReplicaSet::FailOver() {
  // Let every surviving replica apply whatever was delivered before now.
  CatchUpAll();
  int best = -1;
  for (uint32_t id = 0; id < replicas_.size(); ++id) {
    if (id == master_) continue;
    const Replica& r = replicas_[id];
    if (!r.up) continue;
    if (best < 0 || r.applied > replicas_[best].applied) {
      best = static_cast<int>(id);
    }
  }
  if (best < 0) {
    return Status::Unavailable("no surviving replica to promote");
  }
  FailoverReport report;
  report.old_master = master_;
  report.new_master = static_cast<uint32_t>(best);
  report.acknowledged_seq = log_.LastSeq();
  report.promoted_seq = replicas_[best].applied;
  report.lost_transactions =
      static_cast<int64_t>(report.acknowledged_seq - report.promoted_seq);
  // Acknowledged-but-unreplicated suffix is gone: this is the durability gap
  // of asynchronous replication (§3.3.1 decision 2).
  log_.TruncateAfter(report.promoted_seq);
  master_ = report.new_master;
  last_failover_ = Now();
  return report;
}

namespace {

/// Approximate wire footprint of one log entry's write set (interned-id
/// framing — see storage::WriteOpWireBytes).
int64_t EntryBytes(const LogEntry& e) {
  int64_t bytes = 0;
  for (const WriteOp& op : e.ops) bytes += storage::WriteOpWireBytes(op);
  return bytes;
}

/// Approximate bytes this partition's slice (every key the log touched)
/// occupies in `store`.
int64_t SliceBytes(const storage::CommitLog& log,
                   const storage::RecordStore& store) {
  std::unordered_set<RecordKey> keys;
  for (const LogEntry& entry : log.entries()) {
    for (const WriteOp& op : entry.ops) keys.insert(op.key);
  }
  int64_t bytes = 0;
  for (RecordKey key : keys) {
    const Record* rec = store.Find(key);
    if (rec != nullptr) bytes += rec->ApproxBytes();
  }
  return bytes;
}

}  // namespace

int64_t ReplicaSet::ApproxStreamBytes(CommitSeq after) const {
  int64_t bytes = 0;
  for (CommitSeq s = after + 1; s <= log_.LastSeq(); ++s) {
    bytes += EntryBytes(log_.At(s));
  }
  return bytes;
}

Status ReplicaSet::CheckMigrationStream(const MigrationStream& stream) const {
  if (master_ != stream.expected_master) {
    return Status::FailedPrecondition(
        "primary copy moved while the migration stream was open");
  }
  const Replica& master = replicas_[master_];
  if (!master.up) {
    return Status::Unavailable("master copy crashed during migration");
  }
  if (!network_->Reachable(master.se->site(), stream.target->site())) {
    return Status::Unavailable("migration target unreachable from master copy");
  }
  if (stream.promote_existing && !replicas_[stream.target_replica].up) {
    return Status::Unavailable("migration target replica crashed");
  }
  return Status::Ok();
}

StatusOr<MigrationStream> ReplicaSet::BeginPrimaryMigration(
    storage::StorageElement* target) {
  Replica& master = replicas_[master_];
  if (!master.up) {
    return Status::FailedPrecondition(
        "master copy down; fail over before migrating the primary");
  }
  if (target == master.se) {
    return Status::InvalidArgument(
        "migration target already holds the primary copy");
  }
  if (!network_->Reachable(master_site(), target->site())) {
    return Status::Unavailable("migration target unreachable from master copy");
  }

  MigrationStream stream;
  stream.target = target;
  stream.expected_master = master_;
  stream.snapshot_seq = log_.LastSeq();

  int existing = -1;
  for (uint32_t id = 0; id < replicas_.size(); ++id) {
    if (replicas_[id].se == target) existing = static_cast<int>(id);
  }
  if (existing >= 0) {
    // The target already hosts a secondary copy: the stream ships only the
    // delta and the cutover promotes in place (the old primary SE keeps a
    // secondary copy). Admission: the delta must fit the target's RAM budget
    // — the pending entry volume for an up replica, or (for a crashed one
    // that is dropped and rebuilt) the slice growth over what it now holds.
    uint32_t t = static_cast<uint32_t>(existing);
    stream.promote_existing = true;
    stream.target_replica = t;
    int64_t delta_bytes;
    if (replicas_[t].up) {
      delta_bytes = ApproxStreamBytes(replicas_[t].applied);
    } else {
      delta_bytes = SliceBytes(log_, master.se->store()) -
                    SliceBytes(log_, target->store());
    }
    if (delta_bytes > 0) {
      UDR_RETURN_IF_ERROR(target->CheckCapacity(delta_bytes));
    }
    // Cost accounting baseline: a down replica is dropped and rebuilt from
    // scratch, so the handoff ships the whole log — including whatever
    // RecoverReplica's own catch-up replays — not just the tail left over
    // after recovery.
    if (!replicas_[t].up) {
      RecoverReplica(t);
      stream.shipped_seq = replicas_[t].applied;
      stream.entries_shipped = static_cast<int64_t>(stream.shipped_seq);
      for (CommitSeq s = 1; s <= stream.shipped_seq; ++s) {
        stream.bytes_moved += EntryBytes(log_.At(s));
      }
    } else {
      stream.shipped_seq = replicas_[t].applied;
    }
  } else {
    // Fresh target: the stream replays the whole authoritative log onto it,
    // admission-checked against the slice footprint it will end up holding.
    int64_t slice_bytes = SliceBytes(log_, master.se->store());
    UDR_RETURN_IF_ERROR(target->CheckCapacity(slice_bytes));
    stream.shipped_seq = 0;
  }
  stream.estimated_bytes =
      stream.bytes_moved + ApproxStreamBytes(stream.shipped_seq);
  return stream;
}

StatusOr<int64_t> ReplicaSet::ShipMigrationChunk(MigrationStream* stream,
                                                 int64_t max_bytes) {
  if (stream->finished) {
    return Status::FailedPrecondition("migration stream already finished");
  }
  UDR_RETURN_IF_ERROR(CheckMigrationStream(*stream));
  if (stream->promote_existing) {
    // Normal replication may have delivered entries meanwhile; they arrived
    // over the replication stream, not the migration link, so skip them.
    stream->shipped_seq =
        std::max(stream->shipped_seq, replicas_[stream->target_replica].applied);
  }
  const CommitSeq head = log_.LastSeq();
  int64_t shipped = 0;
  int64_t entries = 0;
  while (stream->shipped_seq < head) {
    if (shipped > 0 && shipped >= max_bytes) break;
    CommitSeq next = stream->shipped_seq + 1;
    const LogEntry& e = log_.At(next);
    if (stream->promote_existing) {
      ApplyEntry(&replicas_[stream->target_replica], next);
    } else {
      for (const WriteOp& op : e.ops) {
        storage::ApplyWriteOp(&stream->target->store(), op);
      }
    }
    stream->shipped_seq = next;
    shipped += EntryBytes(e);
    ++entries;
  }
  stream->bytes_moved += shipped;
  stream->entries_shipped += entries;
  if (entries > 0) {
    // Engine contention: the source spends read service streaming the chunk
    // out, the target spends write service applying it. Foreground ops on
    // either SE queue behind these busy horizons — the stall the bandwidth
    // model exists to bound.
    const MicroTime now = Now();
    storage::StorageElement* source = replicas_[master_].se;
    source->AddBackgroundLoad(now, entries * source->ReadServiceTime());
    stream->target->AddBackgroundLoad(
        now, entries * stream->target->WriteServiceTime());
  }
  return shipped;
}

StatusOr<MigrationReport> ReplicaSet::CompleteMigration(
    MigrationStream* stream) {
  if (stream->finished) {
    return Status::FailedPrecondition("migration stream already finished");
  }
  // Final delta replay: anything committed since the last chunk ships now,
  // so the flip below hands over a target holding every acknowledged write.
  auto rest = ShipMigrationChunk(stream, std::numeric_limits<int64_t>::max());
  if (!rest.ok()) return rest.status();

  const sim::SiteId old_site = master_site();
  MigrationReport report;
  report.entries_replayed = stream->entries_shipped;
  report.bytes_moved = stream->bytes_moved;
  if (stream->promote_existing) {
    report.promoted_existing = true;
    master_ = stream->target_replica;
  } else {
    Replica& master = replicas_[master_];
    DropPartitionKeys(&master);
    master.se = stream->target;
    master.applied = log_.LastSeq();
    master.up = true;
    master.down_since = 0;
    master.outages = sim::IntervalSet();  // Fresh hardware, full log on board.
  }
  report.new_master = master_;
  report.duration =
      network_->topology().Rtt(old_site, stream->target->site()) +
      report.entries_replayed * stream->target->WriteServiceTime();
  stream->finished = true;
  return report;
}

void ReplicaSet::AbortMigration(MigrationStream* stream) {
  if (stream->finished) return;
  stream->finished = true;
  if (stream->promote_existing) {
    // The secondary holds entries from the authoritative log it would have
    // received anyway — valid state, just early. Nothing to undo.
    return;
  }
  // Fresh target: delete the partial slice. Every key it could hold came
  // from the shipped log prefix (keys are owned by exactly one partition,
  // so this cannot touch co-hosted partitions' records).
  std::unordered_set<RecordKey> keys;
  for (CommitSeq s = 1; s <= stream->shipped_seq; ++s) {
    for (const WriteOp& op : log_.At(s).ops) keys.insert(op.key);
  }
  for (RecordKey key : keys) {
    stream->target->store().DeleteRecord(key);
  }
}

StatusOr<MigrationReport> ReplicaSet::MigratePrimaryTo(
    storage::StorageElement* target) {
  if (!replicas_[master_].up) {
    return Status::FailedPrecondition(
        "master copy down; fail over before migrating the primary");
  }
  if (target == replicas_[master_].se) {
    MigrationReport report;
    report.new_master = master_;
    return report;  // Already there; nothing to move.
  }
  // The bulk handoff is the chunked stream with an unbounded budget: one
  // Begin, one all-at-once ship inside Complete, one flip.
  UDR_ASSIGN_OR_RETURN(MigrationStream stream, BeginPrimaryMigration(target));
  auto report = CompleteMigration(&stream);
  if (!report.ok()) AbortMigration(&stream);
  return report;
}

bool ReplicaSet::HasDivergence() const {
  for (const Replica& r : replicas_) {
    if (!r.divergence.empty()) return true;
  }
  return false;
}

RestorationReport ReplicaSet::RestoreConsistency() {
  RestorationReport report;
  storage::RecordStore& master_store = replicas_[master_].se->store();
  std::vector<WriteOp> merged;

  for (uint32_t id = 0; id < replicas_.size(); ++id) {
    Replica& r = replicas_[id];
    if (r.divergence.empty()) continue;
    // Writes the divergent side never saw: anything the master committed
    // after this replica's last applied stream entry.
    MicroTime base_time =
        r.applied == 0 ? 0 : log_.At(r.applied).commit_time;

    for (const LogEntry& entry : r.divergence.entries()) {
      ++report.divergent_entries;
      bool record_applied_any = false;
      for (const WriteOp& op : entry.ops) {
        if (op.kind != WriteKind::kUpsertAttr) {
          // Deletes from the minority side are applied only if the master
          // did not touch the record concurrently.
          const Record* mrec = master_store.Find(op.key);
          if (mrec == nullptr || mrec->LastModified() <= base_time) {
            merged.push_back(op);
            ++report.applied_ops;
          } else {
            ++report.conflicting_ops;
            ++report.dropped_ops;
          }
          continue;
        }
        const Record* mrec = master_store.Find(op.key);
        const storage::Attribute* ma =
            mrec ? mrec->FindById(op.attr_id) : nullptr;
        bool master_wrote_concurrently =
            ma != nullptr && ma->modified_at > base_time;
        bool values_differ =
            ma == nullptr || !storage::ValueEquals(ma->value, op.attribute.value);
        if (!master_wrote_concurrently) {
          merged.push_back(op);
          ++report.applied_ops;
          record_applied_any = true;
          continue;
        }
        if (!values_differ) {
          // Both sides wrote the same value: no conflict.
          ++report.applied_ops;
          record_applied_any = true;
          continue;
        }
        ++report.conflicting_ops;
        switch (config_.merge_policy) {
          case MergePolicy::kFieldMergeLww: {
            bool divergent_wins =
                op.attribute.modified_at > ma->modified_at ||
                (op.attribute.modified_at == ma->modified_at &&
                 op.attribute.writer > ma->writer);
            if (divergent_wins) {
              merged.push_back(op);
              ++report.applied_ops;
              record_applied_any = true;
            } else {
              ++report.dropped_ops;
            }
            break;
          }
          case MergePolicy::kLastWriterWinsRecord: {
            bool divergent_wins =
                entry.commit_time > mrec->LastModified();
            if (divergent_wins) {
              merged.push_back(op);
              ++report.applied_ops;
              record_applied_any = true;
            } else {
              ++report.dropped_ops;
            }
            break;
          }
          case MergePolicy::kPreferMaster:
            ++report.dropped_ops;
            ++report.manual_ops;
            break;
        }
      }
      (void)record_applied_any;
    }
    r.divergence.Reset();
  }

  if (!merged.empty()) {
    for (const WriteOp& op : merged) {
      storage::ApplyWriteOp(&master_store, op);
    }
    log_.Append(Now(), master_, std::move(merged));
    replicas_[master_].applied = log_.LastSeq();
  }

  // Every up replica resyncs to the merged view (the paper's "consistency
  // restoration process must run across the whole UDR NF"). Only this
  // partition's keys are rebuilt: the SE store is shared with co-hosted
  // partitions.
  for (uint32_t id = 0; id < replicas_.size(); ++id) {
    if (id == master_) continue;
    Replica& r = replicas_[id];
    if (!r.up) continue;
    DropPartitionKeys(&r);
    r.applied = 0;
    log_.ReplayRange(&r.se->store(), 0, log_.LastSeq());
    r.applied = log_.LastSeq();
  }
  return report;
}

void ReplicaSet::ForceSyncAll() {
  for (uint32_t id = 0; id < replicas_.size(); ++id) {
    Replica& r = replicas_[id];
    if (!r.up || id == master_) continue;
    while (r.applied < log_.LastSeq()) ApplyEntry(&r, r.applied + 1);
  }
  replicas_[master_].applied = log_.LastSeq();
}

}  // namespace udr::replication
