// Convenience builder for replicated write sets. Higher layers (LDAP modify,
// provisioning) assemble their transactions through this instead of spelling
// out WriteOp structs.

#ifndef UDR_REPLICATION_WRITE_BUILDER_H_
#define UDR_REPLICATION_WRITE_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "storage/commit_log.h"

namespace udr::replication {

/// Fluent builder producing a vector of WriteOps for ReplicaSet::Write.
class WriteBuilder {
 public:
  /// Sets an attribute on a record (name interned into the pool).
  WriteBuilder& Set(storage::RecordKey key, std::string_view attr,
                    storage::Value value) {
    return Set(key, storage::InternAttr(attr), std::move(value));
  }

  /// Sets an attribute on a record by interned id.
  WriteBuilder& Set(storage::RecordKey key, storage::AttrId attr_id,
                    storage::Value value) {
    storage::WriteOp op;
    op.kind = storage::WriteKind::kUpsertAttr;
    op.key = key;
    op.attr_id = attr_id;
    op.attribute.value = std::move(value);
    ops_.push_back(std::move(op));
    return *this;
  }

  /// Removes an attribute from a record.
  WriteBuilder& Remove(storage::RecordKey key, std::string_view attr) {
    storage::WriteOp op;
    op.kind = storage::WriteKind::kRemoveAttr;
    op.key = key;
    op.attr_id = storage::InternAttr(attr);
    ops_.push_back(std::move(op));
    return *this;
  }

  /// Deletes a whole record.
  WriteBuilder& Delete(storage::RecordKey key) {
    storage::WriteOp op;
    op.kind = storage::WriteKind::kDeleteRecord;
    op.key = key;
    ops_.push_back(std::move(op));
    return *this;
  }

  /// Sets every attribute of `record` on `key` (used for record creation).
  WriteBuilder& PutRecord(storage::RecordKey key,
                          const storage::Record& record) {
    for (const storage::PackedAttr& e : record.entries()) {
      Set(key, e.name_id, e.attr.value);
    }
    return *this;
  }

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Consumes the builder.
  std::vector<storage::WriteOp> Build() && { return std::move(ops_); }
  /// Copies out the ops without consuming.
  const std::vector<storage::WriteOp>& ops() const { return ops_; }

 private:
  std::vector<storage::WriteOp> ops_;
};

}  // namespace udr::replication

#endif  // UDR_REPLICATION_WRITE_BUILDER_H_
