// Synthetic subscriber population: E.212 IMSIs, E.164 MSISDNs, IMS
// identities and a realistic GSM/IMS service profile. Deterministic: the
// subscriber with index i is identical across runs and processes.

#ifndef UDR_TELECOM_SUBSCRIBER_H_
#define UDR_TELECOM_SUBSCRIBER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "location/identity.h"
#include "sim/topology.h"
#include "storage/record.h"
#include "udr/udr_nf.h"

namespace udr::telecom {

/// Attribute names of the subscriber profile schema.
namespace attr {
inline constexpr char kImsi[] = "imsi";
inline constexpr char kMsisdn[] = "msisdn";
inline constexpr char kImpi[] = "impi";
inline constexpr char kImpu[] = "impu";
inline constexpr char kAuthKey[] = "authkey";
inline constexpr char kSqn[] = "sqn";
inline constexpr char kCategory[] = "category";
inline constexpr char kOdbPremium[] = "odb-premium-barred";
inline constexpr char kCallForwardingUncond[] = "cfu-number";
inline constexpr char kServingVlr[] = "serving-vlr";
inline constexpr char kServingSgsn[] = "serving-sgsn";
inline constexpr char kLocationArea[] = "location-area";
inline constexpr char kRegistrationState[] = "registration-state";
inline constexpr char kServingCscf[] = "s-cscf";
inline constexpr char kChargingProfile[] = "charging-profile";
inline constexpr char kTeleservices[] = "teleservices";
inline constexpr char kRoamingAllowed[] = "roaming-allowed";
inline constexpr char kHomeSite[] = "homesite";
}  // namespace attr

/// One generated subscriber.
struct Subscriber {
  std::string imsi;
  std::string msisdn;
  std::string impi;
  std::vector<std::string> impus;
  storage::Record profile;

  location::Identity ImsiId() const {
    return {location::IdentityType::kImsi, imsi};
  }
  location::Identity MsisdnId() const {
    return {location::IdentityType::kMsisdn, msisdn};
  }
  location::Identity ImpuId() const {
    return {location::IdentityType::kImpu, impus.front()};
  }
};

/// Deterministic subscriber generator.
class SubscriberFactory {
 public:
  /// `mcc`/`mnc` seed the E.212 numbering plan; `cc` the E.164 country code.
  explicit SubscriberFactory(uint64_t seed = 42, int mcc = 214, int mnc = 5,
                             int cc = 34);

  /// Builds subscriber `index` (same index -> same subscriber).
  Subscriber Make(uint64_t index) const;

  /// Builds a UDR creation spec for subscriber `index`, optionally pinned to
  /// a home site (selective placement).
  udrnf::UdrNf::CreateSpec MakeSpec(
      uint64_t index, std::optional<sim::SiteId> home_site = std::nullopt) const;

  /// IMSI of subscriber `index` without building the whole profile.
  std::string ImsiOf(uint64_t index) const;
  /// MSISDN of subscriber `index`.
  std::string MsisdnOf(uint64_t index) const;

 private:
  uint64_t seed_;
  int mcc_;
  int mnc_;
  int cc_;
};

}  // namespace udr::telecom

#endif  // UDR_TELECOM_SUBSCRIBER_H_
