#include "telecom/provisioning.h"

#include <algorithm>
#include <deque>

#include "ldap/dn.h"

namespace udr::telecom {

ldap::LdapResult ProvisioningSystem::SubmitAdd(
    uint64_t index, std::optional<sim::SiteId> home_site) {
  udrnf::UdrNf::CreateSpec spec = factory_->MakeSpec(index, home_site);
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kAdd;
  req.dn = ldap::SubscriberDn("imsi", factory_->ImsiOf(index));
  req.add_entry = spec.profile;
  req.master_only = true;
  return udr_->Submit(req, config_.site);
}

ProcedureResult ProvisioningSystem::Provision(
    uint64_t index, std::optional<sim::SiteId> home_site) {
  ProcedureResult out;
  for (int attempt = 0; attempt <= config_.retries; ++attempt) {
    ldap::LdapResult r = SubmitAdd(index, home_site);
    ++out.ldap_ops;
    out.latency += r.latency;
    if (r.ok()) {
      out.status = Status::Ok();
      ++provisioned_;
      return out;
    }
    ++out.failed_ops;
    out.status = Status(r.code == ldap::LdapResultCode::kUnavailable
                            ? StatusCode::kUnavailable
                            : StatusCode::kInternal,
                        std::string(ldap::LdapResultCodeName(r.code)) +
                            (r.diagnostic.empty() ? "" : ": " + r.diagnostic));
    if (r.code == ldap::LdapResultCode::kEntryAlreadyExists) {
      out.status = Status::AlreadyExists(r.diagnostic);
      return out;  // Retry cannot help.
    }
  }
  return out;
}

ProcedureResult ProvisioningSystem::Deprovision(uint64_t index) {
  ProcedureResult out;
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kDelete;
  req.dn = ldap::SubscriberDn("imsi", factory_->ImsiOf(index));
  req.master_only = true;
  ldap::LdapResult r = udr_->Submit(req, config_.site);
  ++out.ldap_ops;
  out.latency += r.latency;
  if (!r.ok()) {
    ++out.failed_ops;
    out.status = Status(StatusCode::kUnavailable,
                        std::string(ldap::LdapResultCodeName(r.code)));
  }
  return out;
}

ProcedureResult ProvisioningSystem::SetPremiumBarring(uint64_t index,
                                                      bool barred) {
  ProcedureResult out;
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kModify;
  req.dn = ldap::SubscriberDn("imsi", factory_->ImsiOf(index));
  req.master_only = true;
  req.mods.push_back(
      ldap::Modification{ldap::ModType::kReplace, attr::kOdbPremium, barred});
  ldap::LdapResult r = udr_->Submit(req, config_.site);
  ++out.ldap_ops;
  out.latency += r.latency;
  if (!r.ok()) {
    ++out.failed_ops;
    out.status = Status(StatusCode::kUnavailable,
                        std::string(ldap::LdapResultCodeName(r.code)));
  }
  return out;
}

ProcedureResult ProvisioningSystem::SetCallForwarding(uint64_t index,
                                                      const std::string& number) {
  ProcedureResult out;
  // Master-only read: the PS may not read slave copies (§3.3.3 decision 2).
  ldap::LdapRequest read;
  read.op = ldap::LdapOp::kSearch;
  read.dn = ldap::SubscriberDn("imsi", factory_->ImsiOf(index));
  read.scope = ldap::SearchScope::kBaseObject;
  read.requested_attrs = {attr::kCallForwardingUncond, attr::kCategory};
  read.master_only = true;
  ldap::LdapRequest write;
  write.op = ldap::LdapOp::kModify;
  write.dn = read.dn;
  write.master_only = true;
  write.mods.push_back(ldap::Modification{
      ldap::ModType::kReplace, attr::kCallForwardingUncond, number});

  if (config_.batched) {
    // One provisioning transaction = one multi-op message: both master-only
    // ops land in the same partition group and share one round trip.
    ldap::LdapBatchResult batch =
        udr_->SubmitBatch({read, write}, config_.site);
    out.ldap_ops = static_cast<int>(batch.results.size());
    out.latency = batch.latency;
    for (const ldap::LdapResult& r : batch.results) {
      if (r.ok()) continue;
      ++out.failed_ops;
      if (out.status.ok()) {
        out.status = Status(StatusCode::kUnavailable,
                            std::string(ldap::LdapResultCodeName(r.code)));
      }
    }
    return out;
  }

  ldap::LdapResult r1 = udr_->Submit(read, config_.site);
  ++out.ldap_ops;
  out.latency += r1.latency;
  if (!r1.ok() || r1.entries.empty()) {
    ++out.failed_ops;
    out.status = Status(StatusCode::kUnavailable,
                        std::string(ldap::LdapResultCodeName(r1.code)));
    return out;
  }
  ldap::LdapResult r2 = udr_->Submit(write, config_.site);
  ++out.ldap_ops;
  out.latency += r2.latency;
  if (!r2.ok()) {
    ++out.failed_ops;
    out.status = Status(StatusCode::kUnavailable,
                        std::string(ldap::LdapResultCodeName(r2.code)));
  }
  return out;
}

BatchReport ProvisioningSystem::RunBatch(uint64_t first, int64_t count,
                                         double rate_per_sec,
                                         bool stop_on_failure,
                                         std::optional<sim::SiteId> home_site) {
  BatchReport report;
  sim::SimClock* clock = udr_->network()->clock();
  report.started = clock->Now();
  MicroDuration interarrival =
      rate_per_sec > 0 ? static_cast<MicroDuration>(1e6 / rate_per_sec) : 0;

  for (int64_t i = 0; i < count; ++i) {
    ProcedureResult r = Provision(first + static_cast<uint64_t>(i), home_site);
    ++report.attempted;
    if (r.ok()) {
      ++report.succeeded;
    } else {
      ++report.failed;
      if (stop_on_failure) {
        report.aborted = true;
        report.skipped = count - report.attempted;
        break;
      }
    }
    // The batch pump is rate-limited but never issues the next operation
    // before the previous one completed.
    clock->Advance(std::max(interarrival, r.latency));
  }
  report.finished = clock->Now();
  return report;
}

BacklogReport ProvisioningSystem::RunBacklog(
    MicroDuration duration, double arrival_rate_per_sec, int64_t queue_capacity,
    std::optional<sim::SiteId> home_site, uint64_t first_index) {
  BacklogReport report;
  sim::SimClock* clock = udr_->network()->clock();
  sim::Scheduler scheduler(clock);
  const MicroTime horizon = clock->Now() + duration;
  MicroDuration interarrival =
      static_cast<MicroDuration>(1e6 / arrival_rate_per_sec);

  std::deque<uint64_t> queue;
  bool server_busy = false;
  uint64_t next_index = first_index;

  // Declared up-front so the two lambdas can reference each other.
  std::function<void()> serve_next = [&]() {
    if (queue.empty()) {
      server_busy = false;
      return;
    }
    server_busy = true;
    uint64_t index = queue.front();
    queue.pop_front();
    ProcedureResult r = Provision(index, home_site);
    ++report.served;
    if (!r.ok()) ++report.failed;
    // Completion after the measured provisioning latency.
    scheduler.After(std::max<MicroDuration>(r.latency, 1), serve_next);
  };

  std::function<void(MicroTime)> arrive = [&](MicroTime when) {
    scheduler.At(when, [&, when]() {
      ++report.arrivals;
      if (static_cast<int64_t>(queue.size()) >= queue_capacity) {
        ++report.dropped;
      } else {
        queue.push_back(next_index++);
        report.max_depth =
            std::max(report.max_depth, static_cast<int64_t>(queue.size()));
        if (!server_busy) serve_next();
      }
      MicroTime next = when + interarrival;
      if (next < horizon) arrive(next);
    });
  };

  arrive(clock->Now() + interarrival);
  scheduler.RunUntil(horizon + Seconds(60));  // Drain margin.
  report.final_depth = static_cast<int64_t>(queue.size());
  return report;
}

}  // namespace udr::telecom
