#include "telecom/front_end.h"

#include "common/strings.h"
#include "ldap/dn.h"
#include "telecom/subscriber.h"

namespace udr::telecom {

namespace {

const char* DnAttrFor(location::IdentityType type) {
  switch (type) {
    case location::IdentityType::kImsi:
      return "imsi";
    case location::IdentityType::kMsisdn:
      return "msisdn";
    case location::IdentityType::kImpu:
      return "impu";
    case location::IdentityType::kImpi:
      return "impi";
  }
  return "imsi";
}

ldap::Dn DnFor(const location::Identity& id) {
  return ldap::SubscriberDn(DnAttrFor(id.type), id.value);
}

}  // namespace

ldap::LdapResult FrontEnd::Read(const location::Identity& id,
                                const std::vector<std::string>& attrs) const {
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kSearch;
  req.dn = DnFor(id);
  req.scope = ldap::SearchScope::kBaseObject;
  req.filter = "(objectclass=*)";
  req.requested_attrs = attrs;
  return udr_->Submit(req, site_);
}

ldap::LdapResult FrontEnd::Write(const location::Identity& id,
                                 const std::string& attr,
                                 storage::Value value) const {
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kModify;
  req.dn = DnFor(id);
  req.mods.push_back(
      ldap::Modification{ldap::ModType::kReplace, attr, std::move(value)});
  return udr_->Submit(req, site_);
}

void FrontEnd::Fold(const ldap::LdapResult& r, ProcedureResult* out) {
  ++out->ldap_ops;
  out->latency += r.latency;
  out->any_stale = out->any_stale || r.stale;
  if (!r.ok()) {
    ++out->failed_ops;
    if (out->status.ok()) {
      out->status = Status(r.code == ldap::LdapResultCode::kUnavailable
                               ? StatusCode::kUnavailable
                               : StatusCode::kInternal,
                           std::string(LdapResultCodeName(r.code)) +
                               (r.diagnostic.empty() ? "" : ": " + r.diagnostic));
    }
  }
}

// ---------------------------------------------------------------------------
// HLR-FE
// ---------------------------------------------------------------------------

ProcedureResult HlrFe::Authenticate(const location::Identity& id) {
  ProcedureResult out;
  Fold(Read(id, {attr::kAuthKey, attr::kSqn}), &out);
  Count(out);
  return out;
}

ProcedureResult HlrFe::UpdateLocation(const location::Identity& id,
                                      const std::string& vlr_address,
                                      int64_t location_area) {
  ProcedureResult out;
  // Read the profile (roaming permission, category) ...
  Fold(Read(id, {attr::kRoamingAllowed, attr::kCategory}), &out);
  if (!out.ok()) {
    Count(out);
    return out;
  }
  // ... then register the new serving VLR / location area.
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kModify;
  req.dn = ldap::SubscriberDn(DnAttrFor(id.type), id.value);
  req.mods.push_back(ldap::Modification{ldap::ModType::kReplace,
                                        attr::kServingVlr, vlr_address});
  req.mods.push_back(ldap::Modification{ldap::ModType::kReplace,
                                        attr::kLocationArea, location_area});
  Fold(udr_->Submit(req, site_), &out);
  Count(out);
  return out;
}

ProcedureResult HlrFe::SendRoutingInfo(const location::Identity& id) {
  ProcedureResult out;
  Fold(Read(id, {attr::kServingVlr, attr::kLocationArea}), &out);
  if (out.ok()) {
    Fold(Read(id, {attr::kOdbPremium, attr::kCallForwardingUncond}), &out);
  }
  Count(out);
  return out;
}

ProcedureResult HlrFe::SmsRouting(const location::Identity& id) {
  ProcedureResult out;
  Fold(Read(id, {attr::kServingVlr, attr::kTeleservices}), &out);
  Count(out);
  return out;
}

ProcedureResult HlrFe::InterrogateSs(const location::Identity& id) {
  ProcedureResult out;
  Fold(Read(id, {attr::kCallForwardingUncond}), &out);
  Count(out);
  return out;
}

// ---------------------------------------------------------------------------
// HSS-FE
// ---------------------------------------------------------------------------

ProcedureResult HssFe::ImsRegister(const location::Identity& impu,
                                   const std::string& scscf_name) {
  ProcedureResult out;
  // Cx UAR: registration authorization (impu -> profile).
  Fold(Read(impu, {attr::kImpi, attr::kRegistrationState}), &out);
  if (!out.ok()) { Count(out); return out; }
  // Cx MAR: authentication vectors.
  Fold(Read(impu, {attr::kAuthKey, attr::kSqn}), &out);
  if (!out.ok()) { Count(out); return out; }
  // Cx SAR: S-CSCF assignment (write) + registration state (write).
  Fold(Write(impu, attr::kServingCscf, scscf_name), &out);
  if (!out.ok()) { Count(out); return out; }
  Fold(Write(impu, attr::kRegistrationState, std::string("registered")), &out);
  if (!out.ok()) { Count(out); return out; }
  // Service profile download + charging info.
  Fold(Read(impu, {attr::kTeleservices, attr::kOdbPremium}), &out);
  if (!out.ok()) { Count(out); return out; }
  Fold(Read(impu, {attr::kChargingProfile}), &out);
  Count(out);
  return out;
}

ProcedureResult HssFe::ImsLocate(const location::Identity& impu) {
  ProcedureResult out;
  Fold(Read(impu, {attr::kServingCscf}), &out);
  if (out.ok()) {
    Fold(Read(impu, {attr::kRegistrationState}), &out);
  }
  Count(out);
  return out;
}

ProcedureResult HssFe::ImsDeregister(const location::Identity& impu) {
  ProcedureResult out;
  Fold(Read(impu, {attr::kRegistrationState}), &out);
  if (out.ok()) {
    Fold(Write(impu, attr::kRegistrationState, std::string("deregistered")),
         &out);
  }
  Count(out);
  return out;
}

}  // namespace udr::telecom
