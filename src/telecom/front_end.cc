#include "telecom/front_end.h"

#include "common/strings.h"
#include "ldap/dn.h"
#include "telecom/subscriber.h"

namespace udr::telecom {

namespace {

const char* DnAttrFor(location::IdentityType type) {
  switch (type) {
    case location::IdentityType::kImsi:
      return "imsi";
    case location::IdentityType::kMsisdn:
      return "msisdn";
    case location::IdentityType::kImpu:
      return "impu";
    case location::IdentityType::kImpi:
      return "impi";
  }
  return "imsi";
}

ldap::Dn DnFor(const location::Identity& id) {
  return ldap::SubscriberDn(DnAttrFor(id.type), id.value);
}

}  // namespace

ldap::LdapRequest FrontEnd::MakeRead(
    const location::Identity& id, const std::vector<std::string>& attrs) const {
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kSearch;
  req.dn = DnFor(id);
  req.scope = ldap::SearchScope::kBaseObject;
  req.filter = "(objectclass=*)";
  req.requested_attrs = attrs;
  return req;
}

ldap::LdapRequest FrontEnd::MakeWrite(const location::Identity& id,
                                      const std::string& attr,
                                      storage::Value value) const {
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kModify;
  req.dn = DnFor(id);
  req.mods.push_back(
      ldap::Modification{ldap::ModType::kReplace, attr, std::move(value)});
  return req;
}

void FrontEnd::Fold(const ldap::LdapResult& r, ProcedureResult* out) {
  ++out->ldap_ops;
  out->latency += r.latency;
  out->any_stale = out->any_stale || r.stale;
  if (!r.ok()) {
    ++out->failed_ops;
    if (out->status.ok()) {
      out->status = Status(r.code == ldap::LdapResultCode::kUnavailable
                               ? StatusCode::kUnavailable
                               : StatusCode::kInternal,
                           std::string(LdapResultCodeName(r.code)) +
                               (r.diagnostic.empty() ? "" : ": " + r.diagnostic));
    }
  }
}

ProcedureResult FrontEnd::RunOps(
    const std::vector<ldap::LdapRequest>& requests) {
  ProcedureResult out;
  if (batched_) {
    // One multi-op message: per-op results fold for failure/staleness
    // accounting, the procedure latency is the batch's end-to-end latency.
    ldap::LdapBatchResult batch = udr_->SubmitBatch(requests, site_);
    for (const ldap::LdapResult& r : batch.results) {
      ldap::LdapResult shadow = r;
      shadow.latency = 0;  // The batch latency is not a per-op sum.
      Fold(shadow, &out);
    }
    out.latency = batch.latency;
  } else {
    for (const ldap::LdapRequest& req : requests) {
      Fold(udr_->Submit(req, site_), &out);
      if (!out.ok()) break;  // Sequential procedures abort on first failure.
    }
  }
  Count(out);
  return out;
}

// ---------------------------------------------------------------------------
// HLR-FE
// ---------------------------------------------------------------------------

ProcedureResult HlrFe::Authenticate(const location::Identity& id) {
  return RunOps({MakeRead(id, {attr::kAuthKey, attr::kSqn})});
}

ProcedureResult HlrFe::UpdateLocation(const location::Identity& id,
                                      const std::string& vlr_address,
                                      int64_t location_area) {
  // Read the profile (roaming permission, category), then register the new
  // serving VLR / location area.
  ldap::LdapRequest update;
  update.op = ldap::LdapOp::kModify;
  update.dn = ldap::SubscriberDn(DnAttrFor(id.type), id.value);
  update.mods.push_back(ldap::Modification{ldap::ModType::kReplace,
                                           attr::kServingVlr, vlr_address});
  update.mods.push_back(ldap::Modification{ldap::ModType::kReplace,
                                           attr::kLocationArea, location_area});
  return RunOps(
      {MakeRead(id, {attr::kRoamingAllowed, attr::kCategory}), update});
}

ProcedureResult HlrFe::SendRoutingInfo(const location::Identity& id) {
  return RunOps({MakeRead(id, {attr::kServingVlr, attr::kLocationArea}),
                 MakeRead(id, {attr::kOdbPremium, attr::kCallForwardingUncond})});
}

ProcedureResult HlrFe::SmsRouting(const location::Identity& id) {
  return RunOps({MakeRead(id, {attr::kServingVlr, attr::kTeleservices})});
}

ProcedureResult HlrFe::InterrogateSs(const location::Identity& id) {
  return RunOps({MakeRead(id, {attr::kCallForwardingUncond})});
}

// ---------------------------------------------------------------------------
// HSS-FE
// ---------------------------------------------------------------------------

ProcedureResult HssFe::ImsRegister(const location::Identity& impu,
                                   const std::string& scscf_name) {
  // Cx UAR (authorization) + MAR (auth vectors) + SAR (S-CSCF assignment,
  // registration state) + service profile + charging info: the paper's
  // "somewhat heavier" 5-6 op IMS procedure as one op list.
  return RunOps({
      MakeRead(impu, {attr::kImpi, attr::kRegistrationState}),
      MakeRead(impu, {attr::kAuthKey, attr::kSqn}),
      MakeWrite(impu, attr::kServingCscf, scscf_name),
      MakeWrite(impu, attr::kRegistrationState, std::string("registered")),
      MakeRead(impu, {attr::kTeleservices, attr::kOdbPremium}),
      MakeRead(impu, {attr::kChargingProfile}),
  });
}

ProcedureResult HssFe::ImsLocate(const location::Identity& impu) {
  return RunOps({MakeRead(impu, {attr::kServingCscf}),
                 MakeRead(impu, {attr::kRegistrationState})});
}

ProcedureResult HssFe::ImsDeregister(const location::Identity& impu) {
  return RunOps({MakeRead(impu, {attr::kRegistrationState}),
                 MakeWrite(impu, attr::kRegistrationState,
                           std::string("deregistered"))});
}

}  // namespace udr::telecom
