#include "telecom/front_end.h"

#include "common/strings.h"
#include "ldap/dn.h"
#include "telecom/subscriber.h"

namespace udr::telecom {

namespace {

const char* DnAttrFor(location::IdentityType type) {
  switch (type) {
    case location::IdentityType::kImsi:
      return "imsi";
    case location::IdentityType::kMsisdn:
      return "msisdn";
    case location::IdentityType::kImpu:
      return "impu";
    case location::IdentityType::kImpi:
      return "impi";
  }
  return "imsi";
}

ldap::Dn DnFor(const location::Identity& id) {
  return ldap::SubscriberDn(DnAttrFor(id.type), id.value);
}

}  // namespace

ldap::LdapRequest FrontEnd::MakeRead(
    const location::Identity& id, const std::vector<std::string>& attrs) const {
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kSearch;
  req.dn = DnFor(id);
  req.scope = ldap::SearchScope::kBaseObject;
  req.filter = "(objectclass=*)";
  req.requested_attrs = attrs;
  return req;
}

ldap::LdapRequest FrontEnd::MakeWrite(const location::Identity& id,
                                      const std::string& attr,
                                      storage::Value value) const {
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kModify;
  req.dn = DnFor(id);
  req.mods.push_back(
      ldap::Modification{ldap::ModType::kReplace, attr, std::move(value)});
  return req;
}

void FrontEnd::Fold(const ldap::LdapResult& r, ProcedureResult* out) {
  ++out->ldap_ops;
  out->latency += r.latency;
  out->any_stale = out->any_stale || r.stale;
  if (!r.ok()) {
    ++out->failed_ops;
    if (out->status.ok()) {
      out->status = Status(r.code == ldap::LdapResultCode::kUnavailable
                               ? StatusCode::kUnavailable
                               : StatusCode::kInternal,
                           std::string(LdapResultCodeName(r.code)) +
                               (r.diagnostic.empty() ? "" : ": " + r.diagnostic));
    }
  }
}

void FrontEnd::FoldBatch(const ldap::LdapBatchResult& batch,
                         ProcedureResult* out) {
  for (const ldap::LdapResult& r : batch.results) {
    ldap::LdapResult shadow = r;
    shadow.latency = 0;  // The batch latency is not a per-op sum.
    Fold(shadow, out);
  }
  out->latency = batch.latency;
  out->queue_delay = batch.queue_delay;
}

std::optional<ProcedureResult> FrontEnd::TakeDeferred(uint64_t handle) {
  std::optional<ldap::LdapBatchResult> batch = udr_->TakeEvent(handle);
  if (!batch.has_value()) return std::nullopt;
  ProcedureResult out;
  FoldBatch(*batch, &out);
  Count(out);
  return out;
}

ProcedureResult FrontEnd::RunOps(
    const std::vector<ldap::LdapRequest>& requests) {
  ProcedureResult out;
  if (deferred_) {
    // The whole op list parks in the PoA's cross-event dispatch window; the
    // procedure completes when the window flushes (TakeDeferred). Counting
    // happens at collection, so in-flight procedures are not yet scored.
    auto handle = udr_->SubmitEvent(requests, site_);
    if (handle.ok()) {
      out.pending = *handle;
      return out;
    }
    out.status = handle.status();
    out.failed_ops = static_cast<int>(requests.size());
    Count(out);
    return out;
  }
  if (batched_) {
    FoldBatch(udr_->SubmitBatch(requests, site_), &out);
  } else {
    for (const ldap::LdapRequest& req : requests) {
      Fold(udr_->Submit(req, site_), &out);
      if (!out.ok()) break;  // Sequential procedures abort on first failure.
    }
  }
  Count(out);
  return out;
}

// ---------------------------------------------------------------------------
// HLR-FE
// ---------------------------------------------------------------------------

ProcedureResult HlrFe::Authenticate(const location::Identity& id) {
  return RunOps({MakeRead(id, {attr::kAuthKey, attr::kSqn})});
}

ProcedureResult HlrFe::UpdateLocation(const location::Identity& id,
                                      const std::string& vlr_address,
                                      int64_t location_area) {
  // Read the profile (roaming permission, category), then register the new
  // serving VLR / location area.
  ldap::LdapRequest update;
  update.op = ldap::LdapOp::kModify;
  update.dn = ldap::SubscriberDn(DnAttrFor(id.type), id.value);
  update.mods.push_back(ldap::Modification{ldap::ModType::kReplace,
                                           attr::kServingVlr, vlr_address});
  update.mods.push_back(ldap::Modification{ldap::ModType::kReplace,
                                           attr::kLocationArea, location_area});
  return RunOps(
      {MakeRead(id, {attr::kRoamingAllowed, attr::kCategory}), update});
}

ProcedureResult HlrFe::SendRoutingInfo(const location::Identity& id) {
  return RunOps({MakeRead(id, {attr::kServingVlr, attr::kLocationArea}),
                 MakeRead(id, {attr::kOdbPremium, attr::kCallForwardingUncond})});
}

ProcedureResult HlrFe::SmsRouting(const location::Identity& id) {
  return RunOps({MakeRead(id, {attr::kServingVlr, attr::kTeleservices})});
}

ProcedureResult HlrFe::InterrogateSs(const location::Identity& id) {
  return RunOps({MakeRead(id, {attr::kCallForwardingUncond})});
}

// ---------------------------------------------------------------------------
// HSS-FE
// ---------------------------------------------------------------------------

ProcedureResult HssFe::ImsRegister(const location::Identity& impu,
                                   const std::string& scscf_name) {
  // Cx UAR (authorization) + MAR (auth vectors) + SAR (S-CSCF assignment,
  // registration state) + service profile + charging info: the paper's
  // "somewhat heavier" 5-6 op IMS procedure as one op list.
  return RunOps({
      MakeRead(impu, {attr::kImpi, attr::kRegistrationState}),
      MakeRead(impu, {attr::kAuthKey, attr::kSqn}),
      MakeWrite(impu, attr::kServingCscf, scscf_name),
      MakeWrite(impu, attr::kRegistrationState, std::string("registered")),
      MakeRead(impu, {attr::kTeleservices, attr::kOdbPremium}),
      MakeRead(impu, {attr::kChargingProfile}),
  });
}

ProcedureResult HssFe::ImsLocate(const location::Identity& impu) {
  return RunOps({MakeRead(impu, {attr::kServingCscf}),
                 MakeRead(impu, {attr::kRegistrationState})});
}

ProcedureResult HssFe::ImsDeregister(const location::Identity& impu) {
  return RunOps({MakeRead(impu, {attr::kRegistrationState}),
                 MakeWrite(impu, attr::kRegistrationState,
                           std::string("deregistered"))});
}

}  // namespace udr::telecom
