#include "telecom/subscriber.h"

#include "common/strings.h"

namespace udr::telecom {

SubscriberFactory::SubscriberFactory(uint64_t seed, int mcc, int mnc, int cc)
    : seed_(seed), mcc_(mcc), mnc_(mnc), cc_(cc) {}

std::string SubscriberFactory::ImsiOf(uint64_t index) const {
  // MCC (3) + MNC (2, zero padded) + 10-digit MSIN.
  return StrFormat("%03d%02d%010llu", mcc_, mnc_,
                   static_cast<unsigned long long>(index + 1));
}

std::string SubscriberFactory::MsisdnOf(uint64_t index) const {
  return StrFormat("+%d6%08llu", cc_,
                   static_cast<unsigned long long>(index + 1));
}

Subscriber SubscriberFactory::Make(uint64_t index) const {
  Subscriber s;
  s.imsi = ImsiOf(index);
  s.msisdn = MsisdnOf(index);
  s.impi = s.imsi + StrFormat("@ims.mnc%03d.mcc%03d.3gppnetwork.org", mnc_, mcc_);
  s.impus = {"sip:" + s.msisdn + StrFormat("@ims.mnc%03d.mcc%03d.3gppnetwork.org",
                                           mnc_, mcc_),
             "tel:" + s.msisdn};

  Rng rng(seed_ ^ (index * 0x9E3779B97F4A7C15ULL + 1));
  storage::Record& p = s.profile;
  auto set = [&](const char* name, storage::Value v) {
    p.Set(name, std::move(v), 0, 0);
  };
  set(attr::kImsi, s.imsi);
  set(attr::kMsisdn, s.msisdn);
  set(attr::kImpi, s.impi);
  set(attr::kImpu, s.impus);

  // 128-bit authentication key (Ki), hex encoded.
  std::string ki;
  for (int i = 0; i < 4; ++i) ki += StrFormat("%08llx",
      static_cast<unsigned long long>(rng.Next() & 0xFFFFFFFFULL));
  set(attr::kAuthKey, ki);
  set(attr::kSqn, static_cast<int64_t>(rng.Uniform(1 << 20)));
  set(attr::kCategory,
      std::string(rng.Bernoulli(0.05) ? "priority" : "ordinary"));
  set(attr::kOdbPremium, rng.Bernoulli(0.12));
  set(attr::kCallForwardingUncond, std::string());
  set(attr::kServingVlr, std::string());
  set(attr::kServingSgsn, std::string());
  set(attr::kLocationArea, static_cast<int64_t>(0));
  set(attr::kRegistrationState, std::string("deregistered"));
  set(attr::kServingCscf, std::string());
  set(attr::kChargingProfile, static_cast<int64_t>(rng.Uniform(8)));
  std::vector<std::string> ts = {"ts11", "ts21", "ts22"};
  if (rng.Bernoulli(0.4)) ts.push_back("ts62");
  set(attr::kTeleservices, ts);
  set(attr::kRoamingAllowed, !rng.Bernoulli(0.03));
  return s;
}

udrnf::UdrNf::CreateSpec SubscriberFactory::MakeSpec(
    uint64_t index, std::optional<sim::SiteId> home_site) const {
  Subscriber s = Make(index);
  udrnf::UdrNf::CreateSpec spec;
  spec.identities.push_back(s.ImsiId());
  spec.identities.push_back(s.MsisdnId());
  spec.identities.push_back({location::IdentityType::kImpi, s.impi});
  for (const auto& impu : s.impus) {
    spec.identities.push_back({location::IdentityType::kImpu, impu});
  }
  spec.profile = std::move(s.profile);
  if (home_site.has_value()) {
    spec.profile.Set(attr::kHomeSite, static_cast<int64_t>(*home_site), 0, 0);
    spec.home_site = home_site;
  }
  return spec;
}

}  // namespace udr::telecom
