// The Provisioning System (PS): the back-office client that creates,
// modifies and removes subscriptions (paper §2.4, §3.3.3).
//
// Paper rules reproduced here:
//   * a PS instance is co-located with a UDR PoA (§3.3.3 measure 1);
//   * PS reads are master-only (§3.3.3 measure 2) — stale reads are not
//     acceptable inside provisioning transactions;
//   * a provisioning procedure is ONE transaction against the UDR (that is
//     the whole point of UDC, Figure 4);
//   * batch provisioning pumps a large number of operations back-to-back and
//     is ruined by a short network glitch when the UDR favors Consistency on
//     a partition (§4.1);
//   * a provisioning back-log grows whenever the UDR's provisioning latency
//     exceeds the arrival rate; if the back-log overflows, operations are
//     dropped — "outcome would be fatal" (§3.3).

#ifndef UDR_TELECOM_PROVISIONING_H_
#define UDR_TELECOM_PROVISIONING_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "common/time.h"
#include "sim/scheduler.h"
#include "telecom/front_end.h"
#include "telecom/subscriber.h"
#include "udr/udr_nf.h"

namespace udr::telecom {

/// PS deployment parameters.
struct ProvisioningConfig {
  sim::SiteId site = 0;          ///< Co-located with this PoA.
  int retries = 0;               ///< Immediate retries per failed operation.
  /// Ship multi-op service-management transactions (e.g. the CFU
  /// read-modify-write) as one batched message through the data path's
  /// pipeline instead of one round trip per op.
  bool batched = false;
};

/// One batch provisioning run.
struct BatchReport {
  int64_t attempted = 0;
  int64_t succeeded = 0;
  int64_t failed = 0;
  int64_t skipped = 0;           ///< Not attempted after an abort.
  bool aborted = false;          ///< Batch stopped on first failure.
  MicroTime started = 0;
  MicroTime finished = 0;
  MicroDuration duration() const { return finished - started; }
  /// Failed/skipped operations require manual completion (§4.1 cost).
  int64_t manual_interventions() const { return failed + skipped; }
};

/// One backlog (queueing) run.
struct BacklogReport {
  int64_t arrivals = 0;
  int64_t served = 0;
  int64_t failed = 0;
  int64_t dropped = 0;           ///< Overflow drops ("outcome would be fatal").
  int64_t max_depth = 0;
  int64_t final_depth = 0;
};

/// The Provisioning System.
class ProvisioningSystem {
 public:
  ProvisioningSystem(ProvisioningConfig config, udrnf::UdrNf* udr,
                     const SubscriberFactory* factory)
      : config_(config), udr_(udr), factory_(factory) {}

  sim::SiteId site() const { return config_.site; }

  /// Provisions subscriber `index` as ONE transaction (LDAP Add).
  ProcedureResult Provision(uint64_t index,
                            std::optional<sim::SiteId> home_site = std::nullopt);

  /// Removes subscriber `index` (read + delete, master-only).
  ProcedureResult Deprovision(uint64_t index);

  /// Service-management write: toggle premium barring (modify, master path).
  ProcedureResult SetPremiumBarring(uint64_t index, bool barred);

  /// Service-management write requiring read-modify-write (CFU update): one
  /// master-only read + one write — the §3.3.3 pattern that forbids slave
  /// reads.
  ProcedureResult SetCallForwarding(uint64_t index, const std::string& number);

  /// Pumps `count` provisioning operations starting at subscriber `first`,
  /// paced at `rate_per_sec`. Advances the simulation clock. When
  /// `stop_on_failure`, the batch aborts at the first failed operation
  /// (paper §4.1: "a network glitch as short as 30 seconds may cause a batch
  /// that's been running for hours to fail").
  BatchReport RunBatch(uint64_t first, int64_t count, double rate_per_sec,
                       bool stop_on_failure,
                       std::optional<sim::SiteId> home_site = std::nullopt);

  /// Queueing model: operations arrive at `arrival_rate_per_sec` for
  /// `duration`; one server executes them back-to-back; the queue holds at
  /// most `queue_capacity` operations, beyond which arrivals are dropped.
  BacklogReport RunBacklog(MicroDuration duration, double arrival_rate_per_sec,
                           int64_t queue_capacity,
                           std::optional<sim::SiteId> home_site = std::nullopt,
                           uint64_t first_index = 0);

  int64_t provisioned() const { return provisioned_; }

 private:
  ldap::LdapResult SubmitAdd(uint64_t index,
                             std::optional<sim::SiteId> home_site);

  ProvisioningConfig config_;
  udrnf::UdrNf* udr_;
  const SubscriberFactory* factory_;
  int64_t provisioned_ = 0;
};

}  // namespace udr::telecom

#endif  // UDR_TELECOM_PROVISIONING_H_
