#include "telecom/pre_udc.h"

namespace udr::telecom {

PreUdcNetwork::PreUdcNetwork(PreUdcConfig config, sim::Network* network)
    : config_(std::move(config)), network_(network) {
  for (sim::SiteId site : config_.hlr_sites) {
    hlrs_.push_back(HlrNode{site, true, {}});
  }
  for (sim::SiteId site : config_.slf_sites) {
    slfs_.push_back(SlfNode{site, true, {}});
  }
}

size_t PreUdcNetwork::HlrIndexFor(const std::string& imsi) const {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : imsi) h = (h ^ c) * 1099511628211ULL;
  return static_cast<size_t>(h % hlrs_.size());
}

Status PreUdcNetwork::WriteNode(sim::SiteId from, sim::SiteId to, bool node_up,
                                MicroDuration* latency) {
  if (!node_up) {
    *latency += network_->rpc_timeout();
    return Status::Unavailable("node down");
  }
  sim::RpcCheck check = network_->CheckRpc(from, to);
  *latency += check.latency;
  if (!check.status.ok()) return check.status;
  *latency += config_.node_write_service;
  return Status::Ok();
}

PreUdcProvisionOutcome PreUdcNetwork::Provision(const Subscriber& sub,
                                                sim::SiteId ps_site) {
  PreUdcProvisionOutcome out;
  size_t hlr_idx = HlrIndexFor(sub.imsi);
  HlrNode& hlr = hlrs_[hlr_idx];

  // Write 1: subscription data on the owning HLR node.
  ++out.writes_attempted;
  ++total_writes_;
  Status hlr_status = WriteNode(ps_site, hlr.site, hlr.up, &out.latency);
  bool hlr_written = hlr_status.ok();
  if (hlr_written) {
    hlr.data[sub.imsi] = sub.profile;
    ++out.writes_succeeded;
  }

  // Writes 2..N: identity -> node bindings on EVERY SLF instance.
  int slf_written = 0;
  for (SlfNode& slf : slfs_) {
    ++out.writes_attempted;
    ++total_writes_;
    Status st = WriteNode(ps_site, slf.site, slf.up, &out.latency);
    if (st.ok()) {
      slf.bindings[sub.imsi] = hlr_idx;
      slf.bindings[sub.msisdn] = hlr_idx;
      ++slf_written;
      ++out.writes_succeeded;
    }
  }

  if (out.writes_succeeded == out.writes_attempted) {
    out.status = Status::Ok();
  } else if (out.writes_succeeded == 0) {
    out.status = Status::Unavailable("provisioning failed cleanly");
  } else {
    // No transactionality across nodes: some writes landed, some did not.
    out.partial = true;
    ++partial_states_;
    out.status = Status::Internal(
        "partial provisioning: manual intervention required");
  }
  return out;
}

PreUdcProvisionOutcome PreUdcNetwork::Deprovision(const Subscriber& sub,
                                                  sim::SiteId ps_site) {
  PreUdcProvisionOutcome out;
  size_t hlr_idx = HlrIndexFor(sub.imsi);
  HlrNode& hlr = hlrs_[hlr_idx];

  ++out.writes_attempted;
  ++total_writes_;
  Status hlr_status = WriteNode(ps_site, hlr.site, hlr.up, &out.latency);
  if (hlr_status.ok()) {
    hlr.data.erase(sub.imsi);
    ++out.writes_succeeded;
  }
  for (SlfNode& slf : slfs_) {
    ++out.writes_attempted;
    ++total_writes_;
    Status st = WriteNode(ps_site, slf.site, slf.up, &out.latency);
    if (st.ok()) {
      slf.bindings.erase(sub.imsi);
      slf.bindings.erase(sub.msisdn);
      ++out.writes_succeeded;
    }
  }
  if (out.writes_succeeded == out.writes_attempted) {
    out.status = Status::Ok();
  } else if (out.writes_succeeded == 0) {
    out.status = Status::Unavailable("deprovisioning failed cleanly");
  } else {
    out.partial = true;
    ++partial_states_;
    out.status = Status::Internal(
        "partial deprovisioning: manual intervention required");
  }
  return out;
}

PreUdcLookupOutcome PreUdcNetwork::FeRead(const location::Identity& id,
                                          sim::SiteId fe_site) {
  PreUdcLookupOutcome out;
  // Resolve via the nearest reachable SLF instance.
  int best = -1;
  MicroDuration best_rtt = 0;
  for (size_t i = 0; i < slfs_.size(); ++i) {
    if (!slfs_[i].up) continue;
    if (!network_->Reachable(fe_site, slfs_[i].site)) continue;
    MicroDuration rtt = network_->topology().Rtt(fe_site, slfs_[i].site);
    if (best < 0 || rtt < best_rtt) {
      best = static_cast<int>(i);
      best_rtt = rtt;
    }
  }
  if (best < 0) {
    out.status = Status::Unavailable("no SLF reachable");
    out.latency = network_->rpc_timeout();
    return out;
  }
  ++out.hops;
  out.latency += best_rtt + config_.node_read_service;
  const SlfNode& slf = slfs_[best];
  auto it = slf.bindings.find(id.value);
  if (it == slf.bindings.end()) {
    out.status = Status::NotFound("identity not bound in SLF");
    return out;
  }
  const HlrNode& hlr = hlrs_[it->second];
  if (!hlr.up) {
    // The silo owning this subscriber is down: the subscriber loses service
    // (the node-model failure property, §1).
    out.status = Status::Unavailable("owning HLR node down");
    out.latency += network_->rpc_timeout();
    return out;
  }
  sim::RpcCheck check = network_->CheckRpc(fe_site, hlr.site);
  ++out.hops;
  out.latency += check.latency;
  if (!check.status.ok()) {
    out.status = check.status;
    return out;
  }
  out.latency += config_.node_read_service;
  out.status = Status::Ok();
  return out;
}

bool PreUdcNetwork::GloballyConsistent() const {
  // Every HLR record must be visible in every SLF; every binding must point
  // at an existing record.
  for (size_t h = 0; h < hlrs_.size(); ++h) {
    for (const auto& [imsi, _] : hlrs_[h].data) {
      for (const SlfNode& slf : slfs_) {
        auto it = slf.bindings.find(imsi);
        if (it == slf.bindings.end() || it->second != h) return false;
      }
    }
  }
  for (const SlfNode& slf : slfs_) {
    for (const auto& [identity, h] : slf.bindings) {
      (void)identity;
      if (h >= hlrs_.size()) return false;
    }
  }
  // Bindings referring to deleted/missing records.
  for (const SlfNode& slf : slfs_) {
    for (const auto& [identity, h] : slf.bindings) {
      // Only IMSI keys map 1:1 to records; MSISDN bindings share the record.
      if (identity.size() > 0 && identity[0] != '+') {
        if (hlrs_[h].data.count(identity) == 0) return false;
      }
    }
  }
  return true;
}

}  // namespace udr::telecom
