// Pre-UDC baseline: the node-based subscriber management the paper's
// Figures 1 and 3 depict. Subscriber data live in vertical HLR silos (each
// node owns one partition of the subscriber space); signalling routing data
// (identity -> HLR node) is replicated across SLF instances. Provisioning
// must write every node involved, with NO cross-node transactionality — the
// PS carries "very complex logic" and partial failures leave the network in
// an inconsistent state requiring manual intervention (§2.4).

#ifndef UDR_TELECOM_PRE_UDC_H_
#define UDR_TELECOM_PRE_UDC_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "sim/network.h"
#include "storage/record.h"
#include "telecom/subscriber.h"

namespace udr::telecom {

/// Deployment shape of the baseline network.
struct PreUdcConfig {
  /// HLR nodes (each owns one partition of the subscriber space).
  std::vector<sim::SiteId> hlr_sites = {0, 1, 2};
  /// SLF instances (each holds the full identity -> node map).
  std::vector<sim::SiteId> slf_sites = {0, 1, 2};
  MicroDuration node_write_service = Micros(50);
  MicroDuration node_read_service = Micros(20);
};

/// Outcome of a pre-UDC provisioning procedure (multi-node writes).
struct PreUdcProvisionOutcome {
  Status status;
  int writes_attempted = 0;
  int writes_succeeded = 0;
  MicroDuration latency = 0;
  /// Some writes landed, some did not: the network is now inconsistent and
  /// someone must repair it by hand.
  bool partial = false;
};

/// Outcome of an FE lookup in the baseline (SLF resolve + HLR read).
struct PreUdcLookupOutcome {
  Status status;
  MicroDuration latency = 0;
  int hops = 0;
};

/// The node-based baseline network.
class PreUdcNetwork {
 public:
  PreUdcNetwork(PreUdcConfig config, sim::Network* network);

  size_t hlr_count() const { return hlrs_.size(); }
  size_t slf_count() const { return slfs_.size(); }

  /// Takes an HLR or SLF node down / up (failure injection).
  void SetHlrUp(size_t idx, bool up) { hlrs_[idx].up = up; }
  void SetSlfUp(size_t idx, bool up) { slfs_[idx].up = up; }

  /// Provisions a subscriber: 1 HLR write + one write per SLF instance,
  /// each an independent, non-transactional operation.
  PreUdcProvisionOutcome Provision(const Subscriber& sub, sim::SiteId ps_site);

  /// Removes a subscriber (same multi-write structure).
  PreUdcProvisionOutcome Deprovision(const Subscriber& sub, sim::SiteId ps_site);

  /// FE data access: resolve the subscriber's HLR via the nearest SLF, then
  /// read the HLR node.
  PreUdcLookupOutcome FeRead(const location::Identity& id, sim::SiteId fe_site);

  /// Subscribers whose provisioning left inconsistent state so far.
  int64_t partial_states() const { return partial_states_; }
  /// Manual repairs a human operator must perform (one per partial state).
  int64_t manual_repairs() const { return partial_states_; }
  /// Writes issued across all provisioning procedures.
  int64_t total_writes() const { return total_writes_; }

  /// True when every SLF instance agrees with the HLR contents (no dangling
  /// or missing bindings) — the cross-silo consistency the paper says needs
  /// "coordinated data management".
  bool GloballyConsistent() const;

 private:
  struct HlrNode {
    sim::SiteId site;
    bool up = true;
    std::unordered_map<std::string, storage::Record> data;  // keyed by IMSI.
  };
  struct SlfNode {
    sim::SiteId site;
    bool up = true;
    // identity string -> hlr index.
    std::unordered_map<std::string, size_t> bindings;
  };

  size_t HlrIndexFor(const std::string& imsi) const;
  Status WriteNode(sim::SiteId from, sim::SiteId to, bool node_up,
                   MicroDuration* latency);

  PreUdcConfig config_;
  sim::Network* network_;
  std::vector<HlrNode> hlrs_;
  std::vector<SlfNode> slfs_;
  int64_t partial_states_ = 0;
  int64_t total_writes_ = 0;
};

}  // namespace udr::telecom

#endif  // UDR_TELECOM_PRE_UDC_H_
