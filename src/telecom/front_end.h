// Application front-ends (paper §2.2): stateless HLR-FE and HSS-FE processes
// that execute 3GPP network procedures by reading/writing subscriber data in
// the UDR over LDAP. Each procedure issues the LDAP operation count the
// paper quotes: 1-3 ops for typical mobile procedures, 5-6 for IMS.

#ifndef UDR_TELECOM_FRONT_END_H_
#define UDR_TELECOM_FRONT_END_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "common/time.h"
#include "location/identity.h"
#include "udr/udr_nf.h"

namespace udr::telecom {

/// Outcome of one network procedure.
struct ProcedureResult {
  Status status;
  MicroDuration latency = 0;  ///< Sum of the procedure's UDR op latencies.
  /// Share of `latency` spent parked in the PoA's cross-event dispatch
  /// window (deferred procedures only; 0 on the inline paths).
  MicroDuration queue_delay = 0;
  int ldap_ops = 0;           ///< LDAP operations issued.
  int failed_ops = 0;         ///< Operations that did not succeed.
  bool any_stale = false;     ///< Any read served stale from a slave copy.
  /// Set while the procedure is parked in the PoA coalescing window: the
  /// real outcome is collected with FrontEnd::TakeDeferred(*pending).
  std::optional<uint64_t> pending;

  bool ok() const { return status.ok(); }
  bool deferred() const { return pending.has_value(); }
};

/// Common base: a front-end instance deployed at a site, talking to the UDR.
///
/// A procedure's LDAP ops are declared up-front as a request list. In
/// sequential mode (default) the FE submits them one by one, stopping at the
/// first failure — one round trip per op. In batched mode the whole list
/// ships as ONE multi-op message riding the UDR's staged batch pipeline: all
/// ops execute (per-op error isolation replaces early abort) and the
/// procedure pays one client round trip plus one grouped dispatch per
/// touched partition.
class FrontEnd {
 public:
  FrontEnd(std::string name, sim::SiteId site, udrnf::UdrNf* udr,
           bool batched = false)
      : name_(std::move(name)), site_(site), udr_(udr), batched_(batched) {}
  virtual ~FrontEnd() = default;

  const std::string& name() const { return name_; }
  sim::SiteId site() const { return site_; }
  bool batched() const { return batched_; }
  void set_batched(bool batched) { batched_ = batched; }

  /// Deferred mode: procedures enqueue their op list into the UDR's PoA
  /// coalescing window (UdrNf::SubmitEvent) instead of executing inline and
  /// return a ProcedureResult whose `pending` handle names the parked event.
  /// Collect the real outcome with TakeDeferred once the window flushed.
  bool deferred() const { return deferred_; }
  void set_deferred(bool deferred) { deferred_ = deferred; }

  /// Collects a deferred procedure's outcome; nullopt while its dispatch
  /// window is still open (pump the UDR and retry).
  std::optional<ProcedureResult> TakeDeferred(uint64_t handle);

  int64_t procedures_ok() const { return procedures_ok_; }
  int64_t procedures_failed() const { return procedures_failed_; }

 protected:
  /// Builds a read of the subscriber entry (projected to `attrs`, empty = all).
  ldap::LdapRequest MakeRead(const location::Identity& id,
                             const std::vector<std::string>& attrs) const;
  /// Builds a replace of one attribute of the subscriber entry.
  ldap::LdapRequest MakeWrite(const location::Identity& id,
                              const std::string& attr,
                              storage::Value value) const;

  /// Executes one procedure's ops: one multi-op message when batched,
  /// sequential submits (aborting on first failure) otherwise. Counts the
  /// procedure.
  ProcedureResult RunOps(const std::vector<ldap::LdapRequest>& requests);

  /// Folds an LDAP result into a procedure result.
  static void Fold(const ldap::LdapResult& r, ProcedureResult* out);

  /// Folds a whole multi-op message: per-op results score failure/staleness,
  /// the procedure latency is the batch's end-to-end latency (not a per-op
  /// sum). Shared by the batched and deferred paths.
  static void FoldBatch(const ldap::LdapBatchResult& batch,
                        ProcedureResult* out);

  void Count(const ProcedureResult& r) {
    if (r.ok()) ++procedures_ok_;
    else ++procedures_failed_;
  }

  std::string name_;
  sim::SiteId site_;
  udrnf::UdrNf* udr_;
  bool batched_ = false;
  bool deferred_ = false;
  int64_t procedures_ok_ = 0;
  int64_t procedures_failed_ = 0;
};

/// HLR front-end: GSM/LTE circuit & packet domain procedures.
class HlrFe : public FrontEnd {
 public:
  HlrFe(sim::SiteId site, udrnf::UdrNf* udr, bool batched = false)
      : FrontEnd("hlr-fe-" + std::to_string(site), site, udr, batched) {}

  /// Authentication info retrieval (MAP SAI): 1 read.
  ProcedureResult Authenticate(const location::Identity& id);

  /// Location update (MAP UL): 1 read + 1 write. Registers the serving VLR.
  ProcedureResult UpdateLocation(const location::Identity& id,
                                 const std::string& vlr_address,
                                 int64_t location_area);

  /// Mobile-terminated call setup (MAP SRI): 2 reads (routing + barring).
  ProcedureResult SendRoutingInfo(const location::Identity& id);

  /// Mobile-originated SMS routing check: 1 read.
  ProcedureResult SmsRouting(const location::Identity& id);

  /// Supplementary service interrogation (e.g. CFU state): 1 read.
  ProcedureResult InterrogateSs(const location::Identity& id);
};

/// HSS front-end: IMS Cx procedures ("somewhat heavier": 5-6 ops each).
class HssFe : public FrontEnd {
 public:
  HssFe(sim::SiteId site, udrnf::UdrNf* udr, bool batched = false)
      : FrontEnd("hss-fe-" + std::to_string(site), site, udr, batched) {}

  /// IMS initial registration (Cx UAR/MAR/SAR): 4 reads + 2 writes.
  ProcedureResult ImsRegister(const location::Identity& impu,
                              const std::string& scscf_name);

  /// IMS terminating request (Cx LIR + profile): 2 reads.
  ProcedureResult ImsLocate(const location::Identity& impu);

  /// IMS de-registration (Cx SAR): 1 read + 1 write.
  ProcedureResult ImsDeregister(const location::Identity& impu);
};

}  // namespace udr::telecom

#endif  // UDR_TELECOM_FRONT_END_H_
