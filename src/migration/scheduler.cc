#include "migration/scheduler.h"

#include <algorithm>
#include <cmath>

namespace udr::migration {

using replication::ReplicaSet;

const char* TaskStateName(TaskState state) {
  switch (state) {
    case TaskState::kPending: return "pending";
    case TaskState::kCopying: return "copying";
    case TaskState::kCatchUp: return "catch-up";
    case TaskState::kDone: return "done";
    case TaskState::kFailed: return "failed";
  }
  return "unknown";
}

MigrationScheduler::MigrationScheduler(MigrationSchedulerConfig config,
                                       routing::PartitionMap* map,
                                       routing::Router* router,
                                       const BandwidthModel* bandwidth,
                                       sim::Network* network, Metrics* metrics)
    : config_(config),
      map_(map),
      router_(router),
      bandwidth_(bandwidth),
      network_(network),
      metrics_(metrics) {}

uint64_t MigrationScheduler::EnqueuePlan(const MigrationPlan& plan) {
  const uint64_t plan_id = next_plan_id_++;
  for (const MigrationTaskSpec& spec : plan.tasks) {
    // Idempotency: a partition (or identity) with a non-terminal task keeps
    // its original task; re-planning over in-flight work adds nothing.
    if (spec.kind == TaskKind::kPrimaryMove) {
      if (!partitions_in_flight_.insert(spec.partition).second) continue;
    } else {
      if (!identities_in_flight_.insert(spec.identity).second) continue;
      // The identity's migration window opens now: its record is still on
      // the old partition while the ring already names the new owner, so
      // bypassed reads would misroute until the cutover clears this.
      router_->AddBypassException(spec.identity);
    }
    MigrationTask task;
    task.id = next_task_id_++;
    task.plan = plan_id;
    task.spec = spec;
    tasks_.push_back(std::move(task));
    metrics_->Add("migration.tasks_planned");
  }
  return plan_id;
}

const MigrationTask* MigrationScheduler::CurrentTask() const {
  for (size_t i = cursor_; i < tasks_.size(); ++i) {
    if (!tasks_[i].terminal()) return &tasks_[i];
  }
  return nullptr;
}

int64_t MigrationScheduler::RateForTask(const MigrationTask& task) const {
  sim::SiteId from, to;
  if (task.spec.kind == TaskKind::kPrimaryMove) {
    from = map_->se_info(static_cast<size_t>(task.spec.from_se)).se->site();
    to = map_->se_info(static_cast<size_t>(task.spec.to_se)).se->site();
  } else {
    from = map_->partition(task.spec.from_partition)->master_site();
    to = map_->partition(task.spec.to_partition)->master_site();
  }
  return bandwidth_->EffectiveBps(from, to);
}

int64_t MigrationScheduler::CurrentRateBps() const {
  const MigrationTask* task = CurrentTask();
  return task != nullptr ? RateForTask(*task) : 0;
}

int64_t MigrationScheduler::NextStepBytes() const {
  const MigrationTask* task = CurrentTask();
  if (task == nullptr) return 0;
  int64_t remaining;
  if (task->spec.kind == TaskKind::kPrimaryMove &&
      task->state != TaskState::kPending) {
    remaining = task->stream.estimated_bytes - task->stream.bytes_moved;
  } else {
    remaining = task->spec.estimated_bytes - task->bytes_moved;
  }
  remaining = std::max<int64_t>(remaining, 1);
  return std::min(bandwidth_->chunk_bytes(), remaining);
}

int64_t MigrationScheduler::BurstCapBytes(int64_t rate) const {
  int64_t window_bytes = rate * config_.window / 1'000'000;
  return std::max(bandwidth_->chunk_bytes(), window_bytes);
}

void MigrationScheduler::RefillTokens() {
  const MicroTime now = Now();
  const int64_t rate = CurrentRateBps();
  if (rate <= 0) {
    last_refill_ = now;
    return;  // Unthrottled: the bucket is not consulted.
  }
  tokens_ += static_cast<double>(rate) *
             static_cast<double>(now - last_refill_) / 1e6;
  const double cap = static_cast<double>(BurstCapBytes(rate));
  if (tokens_ > cap) tokens_ = cap;
  last_refill_ = now;
}

void MigrationScheduler::OnForegroundOps(int64_t ops) {
  if (config_.foreground_cost_bytes <= 0 || ops <= 0) return;
  const int64_t rate = CurrentRateBps();
  if (rate <= 0) return;  // Idle or unthrottled: nothing to displace.
  tokens_ -= static_cast<double>(ops * config_.foreground_cost_bytes);
  // Debt is bounded at one burst window so a foreground storm delays — not
  // permanently starves — the next chunk.
  const double cap = static_cast<double>(BurstCapBytes(rate));
  if (tokens_ < -cap) tokens_ = -cap;
}

MicroTime MigrationScheduler::NextDeadline() const {
  const MigrationTask* task = CurrentTask();
  if (task == nullptr) return kTimeInfinity;
  const int64_t rate = RateForTask(*task);
  if (rate <= 0) return Now();  // Unthrottled: work is ready now.
  const int64_t need = NextStepBytes();
  double avail = tokens_ + static_cast<double>(rate) *
                               static_cast<double>(Now() - last_refill_) / 1e6;
  avail = std::min(avail, static_cast<double>(BurstCapBytes(rate)));
  if (avail >= static_cast<double>(need)) return Now();
  const double deficit = static_cast<double>(need) - avail;
  return Now() + static_cast<MicroTime>(std::ceil(deficit * 1e6 /
                                                  static_cast<double>(rate)));
}

bool MigrationScheduler::Pump() {
  RefillTokens();
  bool progressed = false;
  while (cursor_ < tasks_.size()) {
    MigrationTask& task = tasks_[cursor_];
    if (task.terminal()) {
      ++cursor_;
      continue;
    }
    if (!StepTask(&task, /*unlimited=*/false, &progressed)) break;
  }
  return progressed;
}

void MigrationScheduler::DrainAll() { Drain(/*primary_moves_only=*/false); }

void MigrationScheduler::DrainPrimaryMoves() {
  Drain(/*primary_moves_only=*/true);
}

void MigrationScheduler::Drain(bool primary_moves_only) {
  bool progressed = false;
  for (size_t i = cursor_; i < tasks_.size(); ++i) {
    MigrationTask& task = tasks_[i];
    if (task.terminal()) continue;
    if (primary_moves_only && task.spec.kind != TaskKind::kPrimaryMove) {
      continue;
    }
    StepTask(&task, /*unlimited=*/true, &progressed);
  }
  while (cursor_ < tasks_.size() && tasks_[cursor_].terminal()) ++cursor_;
}

bool MigrationScheduler::StepTask(MigrationTask* task, bool unlimited,
                                  bool* progressed) {
  const int64_t rate = RateForTask(*task);
  const bool throttled = !unlimited && rate > 0;

  if (task->spec.kind == TaskKind::kRehome) {
    if (throttled) {
      int64_t need = std::min(bandwidth_->chunk_bytes(),
                              std::max<int64_t>(task->spec.estimated_bytes, 1));
      if (tokens_ < static_cast<double>(need)) return false;
    }
    StepRehome(task);
    if (throttled) tokens_ -= static_cast<double>(task->bytes_moved);
    *progressed = true;
    return true;
  }

  ReplicaSet* rs = map_->partition(task->spec.partition);
  while (true) {
    switch (task->state) {
      case TaskState::kPending: {
        task->started = Now();
        // Each migration task is its own trace: the seeded decision keeps
        // replays tracing the same moves, and every chunk/cutover span below
        // hangs off this context.
        if (tracer_ != nullptr) task->trace = tracer_->StartTrace();
        // Late re-validation: a failover can relocate the primary while the
        // task sits in the queue, making the plan-time donor stale — or the
        // move moot (the planned target already took over).
        storage::StorageElement* target =
            map_->se_info(static_cast<size_t>(task->spec.to_se)).se;
        storage::StorageElement* current = rs->replica_se(rs->master_id());
        if (current == target) {
          task->report.new_master = rs->master_id();
          task->state = TaskState::kDone;
          task->finished = Now();
          FinishTask(task);
          *progressed = true;
          return true;
        }
        task->spec.from_se = map_->IndexOfSe(current);
        auto stream = rs->BeginPrimaryMigration(target);
        if (!stream.ok()) {
          Fail(task, stream.status());
          return true;
        }
        task->stream = *std::move(stream);
        task->state = task->stream.copy_done() ? TaskState::kCatchUp
                                               : TaskState::kCopying;
        *progressed = true;
        break;
      }
      case TaskState::kCopying:
      case TaskState::kCatchUp: {
        if (rs->MigrationLag(task->stream) == 0) {
          Cutover(task, rs);
          return true;
        }
        if (throttled) {
          int64_t remaining = std::max<int64_t>(
              task->stream.estimated_bytes - task->stream.bytes_moved, 1);
          int64_t need = std::min(bandwidth_->chunk_bytes(), remaining);
          if (tokens_ < static_cast<double>(need)) return false;
        }
        auto shipped = rs->ShipMigrationChunk(&task->stream,
                                              bandwidth_->chunk_bytes());
        if (!shipped.ok()) {
          // The target died / the link broke / the master changed: discard
          // the partial copy, the source stays authoritative (no map flip).
          rs->AbortMigration(&task->stream);
          Fail(task, shipped.status());
          return true;
        }
        // An unlimited drain is outside the pacing contract: it must not
        // leave the bucket in debt and starve the next background plan.
        if (throttled) tokens_ -= static_cast<double>(*shipped);
        task->bytes_moved = task->stream.bytes_moved;
        if (*shipped > 0) {
          metrics_->Observe("migration.chunk_bytes", *shipped);
          const sim::SiteId from =
              map_->se_info(static_cast<size_t>(task->spec.from_se))
                  .se->site();
          const sim::SiteId to =
              map_->se_info(static_cast<size_t>(task->spec.to_se)).se->site();
          const MicroDuration transfer_us =
              bandwidth_->TransferTime(from, to, *shipped);
          metrics_->Observe("migration.chunk_transfer_us", transfer_us);
          if (tracer_ != nullptr) {
            tracer_->RecordSpan("migration.chunk", task->trace, Now(),
                                Now() + transfer_us);
          }
          *progressed = true;
        }
        task->state = task->stream.copy_done() ? TaskState::kCatchUp
                                               : TaskState::kCopying;
        if (*shipped == 0) {
          Cutover(task, rs);
          return true;
        }
        break;
      }
      case TaskState::kDone:
      case TaskState::kFailed:
        return true;
    }
  }
}

void MigrationScheduler::StepRehome(MigrationTask* task) {
  task->started = Now();
  if (!rehome_executor_) {
    Fail(task, Status::Internal("no re-home executor installed"));
    return;
  }
  auto moved = rehome_executor_(task->spec);
  if (!moved.ok()) {
    // The record stays on its old partition and the binding stands; the
    // bypass exception installed at enqueue keeps reads routing through the
    // location stage, so nothing is lost — only the fast path stays off for
    // this identity until a later ring change re-plans it.
    Fail(task, moved.status());
    return;
  }
  task->bytes_moved = *moved;
  task->state = TaskState::kDone;
  task->finished = Now();
  // Cutover lifecycle rule (same as the PR 4 delete rule): the migration
  // window is over and ring owner == provisioned location again, so the
  // exception must not linger until the next explicit re-home pass.
  router_->ClearBypassException(task->spec.identity);
  FinishTask(task);
}

void MigrationScheduler::Cutover(MigrationTask* task, ReplicaSet* rs) {
  const int64_t lag = rs->MigrationLag(task->stream);
  const sim::SiteId from_site =
      map_->se_info(static_cast<size_t>(task->spec.from_se)).se->site();
  storage::StorageElement* to_se =
      map_->se_info(static_cast<size_t>(task->spec.to_se)).se;
  auto report = rs->CompleteMigration(&task->stream);
  if (!report.ok()) {
    rs->AbortMigration(&task->stream);
    Fail(task, report.status());
    return;
  }
  map_->NotePrimaryMoved(task->spec.partition, task->spec.from_se,
                         task->spec.to_se, *report);
  task->report = *report;
  task->bytes_moved = report->bytes_moved;
  // The atomic flip: one ownership round trip plus whatever final delta the
  // catch-up left (normally zero — the flip happens inside the same step
  // that drained the lag).
  task->cutover_latency =
      network_->topology().Rtt(from_site, to_se->site()) +
      lag * to_se->WriteServiceTime();
  task->state = TaskState::kDone;
  task->finished = Now();
  metrics_->Observe("migration.cutover_latency", task->cutover_latency);
  if (tracer_ != nullptr) {
    tracer_->RecordSpan("migration.cutover", task->trace, Now(),
                        Now() + task->cutover_latency);
  }
  if (flight_ != nullptr) {
    flight_->Record(Now(), "migration", "cutover",
                    "partition=" + std::to_string(task->spec.partition) +
                        " from_se=" + std::to_string(task->spec.from_se) +
                        " to_se=" + std::to_string(task->spec.to_se));
  }
  FinishTask(task);
}

void MigrationScheduler::Fail(MigrationTask* task, Status error) {
  task->error = std::move(error);
  task->state = TaskState::kFailed;
  task->finished = Now();
  if (flight_ != nullptr) {
    flight_->Record(Now(), "migration", "task.failed",
                    "task=" + std::to_string(task->id) + " " +
                        task->error.ToString());
  }
  FinishTask(task);
}

void MigrationScheduler::FinishTask(MigrationTask* task) {
  if (task->spec.kind == TaskKind::kPrimaryMove) {
    partitions_in_flight_.erase(task->spec.partition);
  } else {
    identities_in_flight_.erase(task->spec.identity);
  }
  if (task->state == TaskState::kDone) {
    metrics_->Add("migration.tasks_done");
    metrics_->Add("migration.bytes_moved", task->bytes_moved);
  } else {
    metrics_->Add("migration.tasks_failed");
  }
}

bool MigrationScheduler::RebalanceInFlight() const {
  for (size_t i = cursor_; i < tasks_.size(); ++i) {
    if (!tasks_[i].terminal() &&
        tasks_[i].spec.kind == TaskKind::kPrimaryMove) {
      return true;
    }
  }
  return false;
}

MigrationProgress MigrationScheduler::Progress() const {
  MigrationProgress p;
  for (const MigrationTask& task : tasks_) {
    ++p.tasks_total;
    p.bytes_estimated += task.spec.estimated_bytes;
    p.bytes_moved += task.bytes_moved;
    switch (task.state) {
      case TaskState::kDone: ++p.tasks_done; break;
      case TaskState::kFailed: ++p.tasks_failed; break;
      default: ++p.tasks_pending; break;
    }
  }
  p.active = p.tasks_pending > 0;
  return p;
}

std::vector<const MigrationTask*> MigrationScheduler::TasksOfPlan(
    uint64_t plan) const {
  std::vector<const MigrationTask*> out;
  for (const MigrationTask& task : tasks_) {
    if (task.plan == plan) out.push_back(&task);
  }
  return out;
}

}  // namespace udr::migration
