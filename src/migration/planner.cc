#include "migration/planner.h"

#include <algorithm>

namespace udr::migration {

using location::Identity;
using replication::ReplicaSet;

namespace {

/// Builds one primary-move spec with the transfer estimate mirroring the
/// stream's Begin-time accounting: a target already hosting an up secondary
/// receives only the delta beyond its applied prefix; anyone else receives
/// the whole replication stream.
MigrationTaskSpec PrimaryMoveSpec(const routing::PartitionMap& map,
                                  uint32_t partition, int from_se, int to_se) {
  MigrationTaskSpec spec;
  spec.kind = TaskKind::kPrimaryMove;
  spec.partition = partition;
  spec.from_se = from_se;
  spec.to_se = to_se;
  const ReplicaSet* rs = map.partition(partition);
  const storage::StorageElement* target =
      map.se_info(static_cast<size_t>(to_se)).se;
  storage::CommitSeq base = 0;
  for (uint32_t r = 0; r < rs->replica_count(); ++r) {
    if (rs->replica_se(r) == target && rs->replica_up(r)) {
      base = rs->applied_seq(r);
    }
  }
  spec.estimated_bytes = rs->ApproxStreamBytes(base);
  return spec;
}

/// Builds one subscriber re-home spec, estimating the transfer from the
/// master copy of the record being moved.
MigrationTaskSpec RehomeSpec(const routing::PartitionMap& map,
                             const Identity& id,
                             const location::LocationEntry& entry,
                             uint32_t owner) {
  MigrationTaskSpec spec;
  spec.kind = TaskKind::kRehome;
  spec.identity = id;
  spec.from_partition = entry.partition;
  spec.to_partition = owner;
  const ReplicaSet* rs = map.partition(entry.partition);
  const storage::Record* rec =
      rs->replica_store(rs->master_id()).Find(entry.key);
  spec.estimated_bytes = rec != nullptr ? rec->ApproxBytes() : 64;
  return spec;
}

/// Deterministic task order: the router's binding table iterates in hash
/// order, so every re-home planner sorts by identity before returning.
void FinalizeRehomePlan(MigrationPlan* plan) {
  std::sort(plan->tasks.begin(), plan->tasks.end(),
            [](const MigrationTaskSpec& a, const MigrationTaskSpec& b) {
              return a.identity < b.identity;
            });
  std::sort(plan->already_homed.begin(), plan->already_homed.end());
  for (const MigrationTaskSpec& spec : plan->tasks) {
    plan->estimated_bytes += spec.estimated_bytes;
  }
}

}  // namespace

MigrationPlan MigrationPlanner::PlanRebalance(const routing::PartitionMap& map) {
  MigrationPlan plan;
  for (const routing::PlannedPrimaryMove& move : map.PlanRebalance()) {
    plan.tasks.push_back(
        PrimaryMoveSpec(map, move.partition, move.from_se, move.to_se));
    plan.estimated_bytes += plan.tasks.back().estimated_bytes;
  }
  return plan;
}

MigrationPlan MigrationPlanner::PlanDecommission(
    const routing::PartitionMap& map, int se_index) {
  MigrationPlan plan;
  if (se_index < 0 || static_cast<size_t>(se_index) >= map.se_count()) {
    return plan;
  }
  // Simulated primary counts over the remaining SEs, so the drained
  // partitions spread instead of piling onto one receiver.
  std::vector<int64_t> counts(map.se_count(), 0);
  std::vector<uint32_t> draining;
  for (uint32_t p = 0; p < map.partition_count(); ++p) {
    if (map.partition_retired(p)) continue;  // Holds nothing to drain.
    const ReplicaSet* rs = map.partition(p);
    int owner = map.IndexOfSe(rs->replica_se(rs->master_id()));
    if (owner == se_index) {
      draining.push_back(p);
    } else if (owner >= 0) {
      ++counts[owner];
    }
  }
  for (uint32_t p : draining) {
    int best = -1;
    for (size_t i = 0; i < map.se_count(); ++i) {
      if (static_cast<int>(i) == se_index) continue;
      if (best < 0 || counts[i] < counts[best]) best = static_cast<int>(i);
    }
    if (best < 0) break;  // Nowhere to drain to.
    ++counts[best];
    plan.tasks.push_back(PrimaryMoveSpec(map, p, se_index, best));
    plan.estimated_bytes += plan.tasks.back().estimated_bytes;
  }
  return plan;
}

MigrationPlan MigrationPlanner::PlanRehome(const routing::Router& router,
                                           const routing::PartitionMap& map,
                                           location::IdentityType type) {
  MigrationPlan plan;
  if (map.partition_count() == 0) return plan;
  for (const auto& [id, entry] : router.bindings()) {
    if (id.type != type) continue;
    uint32_t owner = map.PartitionOfIdentity(id);
    if (owner == entry.partition) {
      plan.already_homed.push_back(id);
      continue;
    }
    plan.tasks.push_back(RehomeSpec(map, id, entry, owner));
  }
  FinalizeRehomePlan(&plan);
  return plan;
}

MigrationPlan MigrationPlanner::PlanSplit(const routing::Router& router,
                                          const routing::PartitionMap& map,
                                          location::IdentityType type,
                                          uint32_t parent, uint32_t sibling) {
  MigrationPlan plan;
  if (map.partition_count() == 0) return plan;
  for (const auto& [id, entry] : router.bindings()) {
    if (id.type != type || entry.partition != parent) continue;
    uint32_t owner = map.PartitionOfIdentity(id);
    if (owner != sibling) continue;  // The split did not claim this arc half.
    plan.tasks.push_back(RehomeSpec(map, id, entry, owner));
  }
  FinalizeRehomePlan(&plan);
  return plan;
}

MigrationPlan MigrationPlanner::PlanMerge(const routing::Router& router,
                                          const routing::PartitionMap& map,
                                          location::IdentityType type,
                                          uint32_t sibling) {
  MigrationPlan plan;
  if (map.partition_count() == 0) return plan;
  for (const auto& [id, entry] : router.bindings()) {
    if (id.type != type || entry.partition != sibling) continue;
    uint32_t owner = map.PartitionOfIdentity(id);
    if (owner == sibling) continue;  // Defensive: points should be gone.
    plan.tasks.push_back(RehomeSpec(map, id, entry, owner));
  }
  FinalizeRehomePlan(&plan);
  return plan;
}

}  // namespace udr::migration
