// MigrationScheduler: drains planned migration tasks in chunked,
// deadline-paced steps so data movement interleaves with foreground traffic
// instead of blocking it.
//
// Each primary-move task runs the copy -> catch-up -> cutover state machine
// over a replication::MigrationStream: the copy phase ships the commit-log
// snapshot prefix in chunks, catch-up replays the delta committed since copy
// start, and the cutover atomically flips ownership once the target holds
// every acknowledged write (zero-acknowledged-write-loss). Re-home tasks ship
// one hash-keyed subscriber record each through an executor the deployment
// layer supplies (binding and population bookkeeping live there); the bypass
// exception protecting the identity during its migration window is cleared
// here, at cutover.
//
// Pacing reuses the sim-clock window mechanics of routing::Coalescer: a
// token bucket earns bytes at the bandwidth model's effective link rate and
// bursts at most one window's worth; Pump() performs whatever steps the
// bucket affords at the current sim time, and NextDeadline() tells drivers
// exactly when the next chunk's budget matures — the same advance-to-
// deadline loop that flushes coalescer windows also drives migration. A
// priority knob (foreground_cost_bytes) lets foreground operations displace
// migration budget from the window, shrinking background throughput under
// load. With an unthrottled bandwidth model Pump() drains everything
// inline, byte-identical in effect to the old synchronous bulk pass.

#ifndef UDR_MIGRATION_SCHEDULER_H_
#define UDR_MIGRATION_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/time.h"
#include "migration/bandwidth_model.h"
#include "migration/planner.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "routing/partition_map.h"
#include "routing/router.h"
#include "sim/network.h"

namespace udr::migration {

/// Lifecycle of one migration task.
enum class TaskState {
  kPending,  ///< Planned; stream not yet opened.
  kCopying,  ///< Shipping the snapshot prefix (copy phase).
  kCatchUp,  ///< Copy done; replaying the delta committed since.
  kDone,     ///< Cut over; the move is complete.
  kFailed,   ///< Aborted; the source stayed authoritative.
};

const char* TaskStateName(TaskState state);

/// One task being executed (spec + live execution state).
struct MigrationTask {
  uint64_t id = 0;
  uint64_t plan = 0;  ///< EnqueuePlan() handle this task belongs to.
  MigrationTaskSpec spec;
  TaskState state = TaskState::kPending;
  replication::MigrationStream stream;  ///< kPrimaryMove only.
  replication::MigrationReport report;  ///< Filled at cutover.
  Status error;                         ///< kFailed only.
  int64_t bytes_moved = 0;
  MicroTime started = 0;
  MicroTime finished = 0;
  MicroDuration cutover_latency = 0;  ///< Modelled final-flip latency.
  /// Per-task trace (allocated when the task first runs): chunk ships and
  /// the cutover hang off it so a move's pacing is visible span by span.
  obs::TraceContext trace;

  bool terminal() const {
    return state == TaskState::kDone || state == TaskState::kFailed;
  }
};

/// Aggregate progress snapshot.
struct MigrationProgress {
  int64_t tasks_total = 0;
  int64_t tasks_done = 0;
  int64_t tasks_failed = 0;
  int64_t tasks_pending = 0;  ///< Not yet terminal.
  int64_t bytes_moved = 0;
  int64_t bytes_estimated = 0;
  bool active = false;
};

/// Static configuration of the scheduler's pacing window.
struct MigrationSchedulerConfig {
  /// Token-bucket burst window: the bucket holds at most one window's worth
  /// of bytes at the effective link rate (never less than one chunk).
  MicroDuration window = Millis(1);
  /// Priority knob: every foreground operation reported while migration is
  /// in flight displaces this many bytes of migration budget from the
  /// window (0 = foreground load does not shrink the budget).
  int64_t foreground_cost_bytes = 0;
};

class MigrationScheduler {
 public:
  /// Ships one re-homed subscriber record and rebinds its identities;
  /// returns the bytes moved. Supplied by the deployment layer.
  using RehomeExecutor =
      std::function<StatusOr<int64_t>(const MigrationTaskSpec& spec)>;

  MigrationScheduler(MigrationSchedulerConfig config,
                     routing::PartitionMap* map, routing::Router* router,
                     const BandwidthModel* bandwidth, sim::Network* network,
                     Metrics* metrics);

  const MigrationSchedulerConfig& config() const { return config_; }
  void set_rehome_executor(RehomeExecutor executor) {
    rehome_executor_ = std::move(executor);
  }

  /// Appends a plan's tasks to the drain queue. Tasks whose partition (or
  /// identity) already has a non-terminal task are dropped — re-planning
  /// over in-flight work is an idempotent no-op, not a duplicate move.
  /// Re-home tasks get their bypass exception installed here: the identity
  /// resolves through the location stage for the whole migration window.
  uint64_t EnqueuePlan(const MigrationPlan& plan);

  /// Performs every step the token bucket affords at the current sim time.
  /// Returns whether any progress was made.
  bool Pump();

  /// Runs every queued task to completion, ignoring pacing (the synchronous
  /// bulk path, and the end-of-run barrier). Never leaves the token bucket
  /// in debt — draining is outside the pacing contract.
  void DrainAll();

  /// DrainAll restricted to primary-move tasks: the synchronous Rebalance()
  /// barrier must not also rush queued re-home tasks past their throttle.
  void DrainPrimaryMoves();

  /// When the next chunk's byte budget matures (kTimeInfinity when idle;
  /// "now" when work is ready or the model is unthrottled). Drivers advance
  /// the clock here and Pump(), exactly like coalescer window deadlines.
  MicroTime NextDeadline() const;

  bool HasWork() const { return CurrentTask() != nullptr; }
  /// Any primary-move task not yet terminal (the in-flight rebalance delta).
  bool RebalanceInFlight() const;

  MigrationProgress Progress() const;
  const std::deque<MigrationTask>& tasks() const { return tasks_; }
  std::vector<const MigrationTask*> TasksOfPlan(uint64_t plan) const;

  /// Priority coupling: foreground operations displace migration budget.
  void OnForegroundOps(int64_t ops);

  /// Installs the tracer chunk/cutover spans are recorded into (nullptr =
  /// off) and the flight recorder cutovers and failures are logged to.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  void set_flight_recorder(obs::FlightRecorder* flight) { flight_ = flight; }

 private:
  MicroTime Now() const { return network_->Now(); }

  /// First non-terminal task, nullptr when the queue is drained.
  const MigrationTask* CurrentTask() const;

  /// Effective migration rate over the link a task moves across.
  int64_t RateForTask(const MigrationTask& task) const;
  /// Effective link rate of the task the scheduler is currently draining
  /// (0 = unthrottled).
  int64_t CurrentRateBps() const;
  /// Byte budget the current task needs for its next step.
  int64_t NextStepBytes() const;
  int64_t BurstCapBytes(int64_t rate) const;
  void RefillTokens();

  /// Shared DrainAll / DrainPrimaryMoves body.
  void Drain(bool primary_moves_only);

  /// Advances one task as far as the budget allows. Returns false when the
  /// bucket ran dry (stop pumping); true when the task reached a terminal
  /// state (move on to the next).
  bool StepTask(MigrationTask* task, bool unlimited, bool* progressed);
  void StepRehome(MigrationTask* task);
  void Cutover(MigrationTask* task, replication::ReplicaSet* rs);
  void Fail(MigrationTask* task, Status error);
  void FinishTask(MigrationTask* task);

  MigrationSchedulerConfig config_;
  routing::PartitionMap* map_;
  routing::Router* router_;
  const BandwidthModel* bandwidth_;
  sim::Network* network_;
  Metrics* metrics_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  RehomeExecutor rehome_executor_;

  std::deque<MigrationTask> tasks_;  ///< Full history; cursor_ splits live/past.
  size_t cursor_ = 0;                ///< First non-terminal task.
  uint64_t next_task_id_ = 1;
  uint64_t next_plan_id_ = 1;
  double tokens_ = 0;  ///< Byte budget earned but not yet spent.
  MicroTime last_refill_ = 0;
  std::unordered_set<uint32_t> partitions_in_flight_;
  std::unordered_set<location::Identity, location::IdentityHasher>
      identities_in_flight_;
};

}  // namespace udr::migration

#endif  // UDR_MIGRATION_SCHEDULER_H_
