// MigrationPlanner: turns a PartitionMap delta into an ordered set of
// migration task specifications for the MigrationScheduler to execute.
//
// Two kinds of bulk data movement exist in the UDR and both are planned
// here, so every mover in the system drains through the one throttled
// scheduler instead of its own ad-hoc synchronous loop:
//   * primary-copy moves — the rebalancing delta after AddCluster /
//     Rebalance (the placement decisions themselves come from
//     routing::PartitionMap::PlanRebalance, the single placement brain);
//   * hash-keyed subscriber re-homes — after the consistent-hash ring grew,
//     the ~K/N subscribers whose ring owner changed must ship to their new
//     partition before the location bypass can serve them again.
//
// Plans are deterministic: the same map/router state yields the same task
// list, which is what makes repeated planning calls idempotent (an already
// balanced map plans nothing; the scheduler additionally refuses duplicate
// in-flight tasks).

#ifndef UDR_MIGRATION_PLANNER_H_
#define UDR_MIGRATION_PLANNER_H_

#include <cstdint>
#include <vector>

#include "location/identity.h"
#include "routing/partition_map.h"
#include "routing/router.h"

namespace udr::migration {

/// What a migration task moves.
enum class TaskKind {
  kPrimaryMove,  ///< A partition's primary copy to another storage element.
  kRehome,       ///< One hash-keyed subscriber record to its ring owner.
};

/// One planned unit of data movement.
struct MigrationTaskSpec {
  TaskKind kind = TaskKind::kPrimaryMove;
  // -- kPrimaryMove ------------------------------------------------------------
  uint32_t partition = 0;
  int from_se = -1;  ///< PartitionMap registry index of the donor SE.
  int to_se = -1;    ///< Registry index of the receiving SE.
  // -- kRehome -----------------------------------------------------------------
  location::Identity identity;
  uint32_t from_partition = 0;
  uint32_t to_partition = 0;
  // -- Common ------------------------------------------------------------------
  /// Planner's transfer-size estimate (the bandwidth model budgets against
  /// it; the bench checks actual bytes land within 5% of it).
  int64_t estimated_bytes = 0;
};

/// An ordered set of tasks plus planning byproducts.
struct MigrationPlan {
  std::vector<MigrationTaskSpec> tasks;
  int64_t estimated_bytes = 0;
  /// Re-home planning only: identities whose ring owner agrees with their
  /// provisioned location again — any bypass exception left from an earlier
  /// failed re-home is obsolete and the caller should clear it.
  std::vector<location::Identity> already_homed;

  bool empty() const { return tasks.empty(); }
};

class MigrationPlanner {
 public:
  /// Plans the primary-copy delta that balances `map` under its configured
  /// rebalance weight. Estimates each move's transfer size from the
  /// partition's replication stream (delta-only when the target already
  /// hosts a secondary copy).
  static MigrationPlan PlanRebalance(const routing::PartitionMap& map);

  /// Plans the re-home of every bound identity of `type` whose ring owner
  /// differs from its provisioned partition, ordered by identity for
  /// determinism.
  static MigrationPlan PlanRehome(const routing::Router& router,
                                  const routing::PartitionMap& map,
                                  location::IdentityType type);

  /// Plans the decommissioning of one storage element: every partition it
  /// primary-hosts moves to the least-loaded remaining SE (spread-aware, so
  /// the drained load lands evenly). The SE keeps its secondary copies —
  /// replica membership changes are a follow-on.
  static MigrationPlan PlanDecommission(const routing::PartitionMap& map,
                                        int se_index);

  /// Plans the subscriber movement of a runtime partition split: the ring
  /// already carries `sibling`'s midpoint arcs (PartitionMap::
  /// CommissionSplitSibling), so every bound identity of `type` still homed
  /// on `parent` whose ring owner is now `sibling` becomes one re-home task
  /// — the half-slice plan the throttled scheduler then executes. Identities
  /// the split did not claim are untouched.
  static MigrationPlan PlanSplit(const routing::Router& router,
                                 const routing::PartitionMap& map,
                                 location::IdentityType type, uint32_t parent,
                                 uint32_t sibling);

  /// Plans a merge drain: `sibling`'s ring points are already off the ring
  /// (PartitionMap::BeginMerge), so every identity of `type` still homed on
  /// it re-homes to its current ring owner — the parent, for arcs no later
  /// split claimed.
  static MigrationPlan PlanMerge(const routing::Router& router,
                                 const routing::PartitionMap& map,
                                 location::IdentityType type, uint32_t sibling);
};

}  // namespace udr::migration

#endif  // UDR_MIGRATION_PLANNER_H_
