#include "migration/bandwidth_model.h"

namespace udr::migration {

int64_t BandwidthModel::EffectiveBps(sim::SiteId from, sim::SiteId to) const {
  int64_t link = topology_ != nullptr ? topology_->LinkBandwidthBps(from, to) : 0;
  int64_t cap = config_.bandwidth_bps;
  if (cap <= 0) return link;
  if (link <= 0) return cap;
  return cap < link ? cap : link;
}

MicroDuration BandwidthModel::TransferTime(sim::SiteId from, sim::SiteId to,
                                           int64_t bytes) const {
  int64_t bps = EffectiveBps(from, to);
  if (bps <= 0 || bytes <= 0) return 0;
  // Ceiling division keeps deadlines conservative: a chunk is never
  // considered transferred before the rate allows.
  return static_cast<MicroDuration>((bytes * 1'000'000 + bps - 1) / bps);
}

}  // namespace udr::migration
