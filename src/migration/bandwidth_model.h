// BandwidthModel: how fast the interconnect lets background migration move
// bytes between two storage elements' sites.
//
// The model combines two inputs:
//   * the deployment-wide migration cap (UdrConfig::migration_bandwidth_bps,
//     bytes/second) — the operator's "how much of the interconnect may
//     migration consume" knob; 0 means unthrottled (a move drains inline,
//     the pre-migration-subsystem behavior);
//   * the per-link bulk bandwidth of the simulated topology
//     (sim::Topology::LinkBandwidthBps), when the scenario models one.
// The effective rate of a link is the tighter of the two. Chunk sizes
// (migration_chunk_bytes) convert through the rate into sim-clock transfer
// durations, which is what the MigrationScheduler paces its token bucket —
// and therefore its window deadlines — against.

#ifndef UDR_MIGRATION_BANDWIDTH_MODEL_H_
#define UDR_MIGRATION_BANDWIDTH_MODEL_H_

#include <cstdint>

#include "common/time.h"
#include "sim/topology.h"

namespace udr::migration {

/// Static configuration of the migration bandwidth model.
struct BandwidthModelConfig {
  /// Migration traffic cap per SE-pair link, bytes/second (0 = unthrottled).
  int64_t bandwidth_bps = 0;
  /// Transfer unit: a migration step ships at most this many bytes before
  /// yielding to foreground work.
  int64_t chunk_bytes = 64 * 1024;
};

/// Converts chunk sizes into sim-clock transfer budgets per SE-pair link.
class BandwidthModel {
 public:
  BandwidthModel(BandwidthModelConfig config, const sim::Topology* topology)
      : config_(config), topology_(topology) {}

  const BandwidthModelConfig& config() const { return config_; }
  int64_t chunk_bytes() const { return config_.chunk_bytes; }

  /// Effective migration rate between two sites, bytes/second: the tighter
  /// of the configured cap and the link's modelled bulk bandwidth.
  /// 0 = unthrottled (transfers complete in link latency alone).
  int64_t EffectiveBps(sim::SiteId from, sim::SiteId to) const;

  /// Sim-clock time to push `bytes` over the link at the effective rate
  /// (excluding propagation latency; 0 when unthrottled).
  MicroDuration TransferTime(sim::SiteId from, sim::SiteId to,
                             int64_t bytes) const;

 private:
  BandwidthModelConfig config_;
  const sim::Topology* topology_;
};

}  // namespace udr::migration

#endif  // UDR_MIGRATION_BANDWIDTH_MODEL_H_
