// Stateless LDAP server processes and the L4 balancer fronting them
// (paper §3.4.1). Servers add per-operation processing cost and capacity
// accounting; request semantics are delegated to the backend (the UDR data
// path). Because servers are stateless, any instance can serve any client —
// the statistical-multiplexing property §2.2 highlights.

#ifndef UDR_LDAP_SERVER_H_
#define UDR_LDAP_SERVER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "ldap/message.h"
#include "sim/topology.h"

namespace udr::ldap {

/// Configuration of one LDAP server process.
struct LdapServerConfig {
  std::string name = "ldap";
  sim::SiteId site = 0;
  /// Per-operation protocol processing cost. The paper's tested figure is
  /// 10^6 indexed single-subscriber ops/s per server on a state-of-the-art
  /// blade, i.e. ~1 µs of processing per op.
  MicroDuration per_op_cost = Micros(1);
};

/// One stateless LDAP server process.
class LdapServer {
 public:
  LdapServer(LdapServerConfig config, LdapBackend* backend)
      : config_(std::move(config)), backend_(backend) {}

  const LdapServerConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  sim::SiteId site() const { return config_.site; }

  bool healthy() const { return healthy_; }
  void set_healthy(bool h) { healthy_ = h; }

  /// Serves one request: protocol cost + backend semantics.
  LdapResult Serve(const LdapRequest& request, sim::SiteId client_site) {
    LdapResult result = backend_->Process(request, client_site);
    result.latency += config_.per_op_cost;
    ++ops_served_;
    return result;
  }

  /// Serves one multi-op request: per-op protocol cost, one backend batch.
  LdapBatchResult ServeBatch(const std::vector<LdapRequest>& requests,
                             sim::SiteId client_site) {
    LdapBatchResult result = backend_->ProcessBatch(requests, client_site);
    result.latency +=
        config_.per_op_cost * static_cast<int64_t>(requests.size());
    ops_served_ += static_cast<int64_t>(requests.size());
    return result;
  }

  /// Enqueues one multi-op request into the backend's dispatch window. The
  /// protocol processing happens at enqueue; its cost is charged onto the
  /// result when it is taken.
  uint64_t EnqueueBatch(const std::vector<LdapRequest>& requests,
                        sim::SiteId client_site) {
    uint64_t handle = backend_->EnqueueBatch(requests, client_site);
    pending_cost_[handle] =
        config_.per_op_cost * static_cast<int64_t>(requests.size());
    ops_served_ += static_cast<int64_t>(requests.size());
    return handle;
  }

  /// Claims the result of an enqueued request once its window flushed.
  std::optional<LdapBatchResult> TakeBatch(uint64_t handle) {
    std::optional<LdapBatchResult> result = backend_->TakeBatchResult(handle);
    if (result.has_value()) {
      auto it = pending_cost_.find(handle);
      if (it != pending_cost_.end()) {
        result->latency += it->second;
        pending_cost_.erase(it);
      }
    }
    return result;
  }

  int64_t ops_served() const { return ops_served_; }

  /// Advertised capacity in operations per second (1 / per_op_cost).
  int64_t OpsPerSecondCapacity() const {
    return config_.per_op_cost > 0 ? Seconds(1) / config_.per_op_cost : 0;
  }

 private:
  LdapServerConfig config_;
  LdapBackend* backend_;
  bool healthy_ = true;
  int64_t ops_served_ = 0;
  /// Protocol cost owed per enqueued-but-not-yet-taken request.
  std::unordered_map<uint64_t, MicroDuration> pending_cost_;
};

/// L4-capable IP balancer realizing the Point of Access (PoA) to the UDR:
/// spreads LDAP traffic round-robin over the healthy local servers and
/// auto-detects newly deployed instances (paper §3.4.1).
class L4Balancer {
 public:
  explicit L4Balancer(sim::SiteId site) : site_(site) {}

  sim::SiteId site() const { return site_; }

  /// Registers a server (scale-up: growth is automatic).
  void AddServer(LdapServer* server) { servers_.push_back(server); }

  size_t server_count() const { return servers_.size(); }

  /// Every registered server, healthy or not (maintenance: drain/restore a
  /// whole farm — Pick() only ever returns healthy instances).
  const std::vector<LdapServer*>& servers() const { return servers_; }

  /// Healthy servers currently in rotation.
  size_t healthy_count() const {
    size_t n = 0;
    for (const auto* s : servers_) {
      if (s->healthy()) ++n;
    }
    return n;
  }

  /// Picks the next healthy server (round robin). Returns Unavailable when
  /// none is healthy.
  StatusOr<LdapServer*> Pick() {
    if (servers_.empty()) return Status::Unavailable("no LDAP servers deployed");
    for (size_t i = 0; i < servers_.size(); ++i) {
      LdapServer* s = servers_[next_ % servers_.size()];
      next_ = (next_ + 1) % servers_.size();
      if (s->healthy()) return s;
    }
    return Status::Unavailable("no healthy LDAP server at PoA");
  }

  /// Serves a request through the next healthy server.
  LdapResult Serve(const LdapRequest& request, sim::SiteId client_site) {
    auto picked = Pick();
    if (!picked.ok()) {
      LdapResult r;
      r.code = LdapResultCode::kUnavailable;
      r.diagnostic = picked.status().message();
      return r;
    }
    return (*picked)->Serve(request, client_site);
  }

  /// Serves a whole multi-op request through one server (the batch is one
  /// protocol message; splitting it would forfeit the grouped dispatch).
  LdapBatchResult ServeBatch(const std::vector<LdapRequest>& requests,
                             sim::SiteId client_site) {
    auto picked = Pick();
    if (!picked.ok()) {
      LdapBatchResult out;
      out.results.resize(requests.size());
      for (LdapResult& r : out.results) {
        r.code = LdapResultCode::kUnavailable;
        r.diagnostic = picked.status().message();
      }
      return out;
    }
    return (*picked)->ServeBatch(requests, client_site);
  }

  /// Enqueues a whole multi-op request through one server into the PoA's
  /// cross-event dispatch window (the event is one protocol message; the
  /// serving instance is remembered so the result can be claimed from it).
  StatusOr<uint64_t> EnqueueBatch(const std::vector<LdapRequest>& requests,
                                  sim::SiteId client_site) {
    auto picked = Pick();
    if (!picked.ok()) return picked.status();
    uint64_t handle = (*picked)->EnqueueBatch(requests, client_site);
    enqueued_[handle] = *picked;
    return handle;
  }

  /// Claims the result of an enqueued request once its window flushed.
  std::optional<LdapBatchResult> TakeBatch(uint64_t handle) {
    auto it = enqueued_.find(handle);
    if (it == enqueued_.end()) return std::nullopt;
    std::optional<LdapBatchResult> result = it->second->TakeBatch(handle);
    if (result.has_value()) enqueued_.erase(it);
    return result;
  }

  /// Aggregate ops/s capacity of the healthy servers.
  int64_t OpsPerSecondCapacity() const {
    int64_t total = 0;
    for (const auto* s : servers_) {
      if (s->healthy()) total += s->OpsPerSecondCapacity();
    }
    return total;
  }

 private:
  sim::SiteId site_;
  std::vector<LdapServer*> servers_;
  size_t next_ = 0;
  /// Server owning each in-flight enqueued request.
  std::unordered_map<uint64_t, LdapServer*> enqueued_;
};

}  // namespace udr::ldap

#endif  // UDR_LDAP_SERVER_H_
