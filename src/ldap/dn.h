// LDAP Distinguished Names (RFC 2251/4514 subset). The UDC specifications
// mandate an LDAP view of subscriber data; the UDR directory tree used here:
//
//   dc=udr
//   └── ou=subscribers
//       └── <idtype>=<value>            e.g. imsi=214050000000001
//
// where <idtype> is one of imsi / msisdn / impu / impi — the leaf RDN names
// the identity index the data location stage should use.

#ifndef UDR_LDAP_DN_H_
#define UDR_LDAP_DN_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace udr::ldap {

/// One relative distinguished name component: attr=value.
struct Rdn {
  std::string attr;   ///< Lower-cased attribute name.
  std::string value;  ///< Attribute value (case preserved).

  bool operator==(const Rdn& o) const { return attr == o.attr && value == o.value; }
};

/// A parsed distinguished name (leaf first, root last, as in LDAP strings).
class Dn {
 public:
  Dn() = default;
  explicit Dn(std::vector<Rdn> rdns) : rdns_(std::move(rdns)) {}

  /// Parses "a=b,c=d,...". Escaped commas ("\,") are honored.
  static StatusOr<Dn> Parse(const std::string& text);

  /// Serializes back to string form.
  std::string ToString() const;

  bool empty() const { return rdns_.empty(); }
  size_t depth() const { return rdns_.size(); }
  const std::vector<Rdn>& rdns() const { return rdns_; }

  /// Leaf (first) RDN; must not be empty.
  const Rdn& leaf() const { return rdns_.front(); }

  /// DN without the leaf RDN.
  Dn Parent() const;

  /// New DN with an extra leaf RDN prepended.
  Dn Child(std::string attr, std::string value) const;

  /// True when this DN ends with `suffix` (is within that subtree).
  bool IsWithin(const Dn& suffix) const;

  bool operator==(const Dn& o) const { return rdns_ == o.rdns_; }

 private:
  std::vector<Rdn> rdns_;
};

/// The subscribers container: "ou=subscribers,dc=udr".
Dn SubscribersBase();

/// Builds the DN of a subscriber entry keyed by the given identity attribute.
Dn SubscriberDn(const std::string& identity_attr, const std::string& value);

}  // namespace udr::ldap

#endif  // UDR_LDAP_DN_H_
