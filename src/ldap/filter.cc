#include "ldap/filter.h"

#include <cstdlib>

#include "common/strings.h"

namespace udr::ldap {

Filter Filter::Eq(std::string attr, std::string value) {
  Filter f;
  f.kind_ = Kind::kEquality;
  f.attr_ = ToLower(attr);
  f.value_ = std::move(value);
  return f;
}

Filter Filter::Present(std::string attr) {
  Filter f;
  f.kind_ = Kind::kPresence;
  f.attr_ = ToLower(attr);
  return f;
}

StatusOr<Filter> Filter::Parse(const std::string& text) {
  size_t pos = 0;
  std::string_view sv = Trim(text);
  auto result = ParseInner(sv, &pos);
  if (!result.ok()) return result;
  if (pos != sv.size()) {
    return Status::InvalidArgument("trailing characters in filter: " + text);
  }
  return result;
}

StatusOr<Filter> Filter::ParseInner(std::string_view text, size_t* pos) {
  if (*pos >= text.size() || text[*pos] != '(') {
    return Status::InvalidArgument("expected '(' in filter");
  }
  ++*pos;
  if (*pos >= text.size()) {
    return Status::InvalidArgument("truncated filter");
  }

  Filter f;
  char c = text[*pos];
  if (c == '&' || c == '|') {
    f.kind_ = (c == '&') ? Kind::kAnd : Kind::kOr;
    ++*pos;
    while (*pos < text.size() && text[*pos] == '(') {
      auto child = ParseInner(text, pos);
      if (!child.ok()) return child;
      f.children_.push_back(std::move(child).value());
    }
    if (f.children_.empty()) {
      return Status::InvalidArgument("composite filter with no children");
    }
  } else if (c == '!') {
    f.kind_ = Kind::kNot;
    ++*pos;
    auto child = ParseInner(text, pos);
    if (!child.ok()) return child;
    f.children_.push_back(std::move(child).value());
  } else {
    // Simple item: attr OP value, where OP in {=, >=, <=}.
    size_t end = text.find(')', *pos);
    if (end == std::string_view::npos) {
      return Status::InvalidArgument("missing ')' in filter");
    }
    std::string_view item = text.substr(*pos, end - *pos);
    size_t ge = item.find(">=");
    size_t le = item.find("<=");
    size_t eq = item.find('=');
    if (ge != std::string_view::npos && (eq == std::string_view::npos || ge < eq)) {
      f.kind_ = Kind::kGreaterEq;
      f.attr_ = ToLower(Trim(item.substr(0, ge)));
      f.value_ = std::string(Trim(item.substr(ge + 2)));
    } else if (le != std::string_view::npos &&
               (eq == std::string_view::npos || le < eq)) {
      f.kind_ = Kind::kLessEq;
      f.attr_ = ToLower(Trim(item.substr(0, le)));
      f.value_ = std::string(Trim(item.substr(le + 2)));
    } else if (eq != std::string_view::npos && eq > 0) {
      std::string_view value = Trim(item.substr(eq + 1));
      f.attr_ = ToLower(Trim(item.substr(0, eq)));
      if (value == "*") {
        f.kind_ = Kind::kPresence;
      } else {
        f.kind_ = Kind::kEquality;
        f.value_ = std::string(value);
      }
    } else {
      return Status::InvalidArgument("malformed filter item '" +
                                     std::string(item) + "'");
    }
    if (f.attr_.empty()) {
      return Status::InvalidArgument("empty attribute in filter item");
    }
    *pos = end;
  }

  if (*pos >= text.size() || text[*pos] != ')') {
    return Status::InvalidArgument("missing closing ')' in filter");
  }
  ++*pos;
  return f;
}

bool Filter::Matches(const storage::Record& record) const {
  switch (kind_) {
    case Kind::kAnd:
      for (const Filter& child : children_) {
        if (!child.Matches(record)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Filter& child : children_) {
        if (child.Matches(record)) return true;
      }
      return false;
    case Kind::kNot:
      return !children_.front().Matches(record);
    case Kind::kPresence:
      return record.Has(attr_);
    case Kind::kEquality: {
      const storage::Attribute* a = record.Find(attr_);
      if (a == nullptr) return false;
      // Multi-valued attributes match when any value matches.
      if (const auto* xs = std::get_if<std::vector<std::string>>(&a->value)) {
        for (const auto& x : *xs) {
          if (x == value_) return true;
        }
        return false;
      }
      return storage::ValueToString(a->value) == value_;
    }
    case Kind::kGreaterEq:
    case Kind::kLessEq: {
      const storage::Attribute* a = record.Find(attr_);
      if (a == nullptr) return false;
      const int64_t* iv = std::get_if<int64_t>(&a->value);
      if (iv != nullptr) {
        int64_t rhs = std::strtoll(value_.c_str(), nullptr, 10);
        return kind_ == Kind::kGreaterEq ? *iv >= rhs : *iv <= rhs;
      }
      std::string lhs = storage::ValueToString(a->value);
      return kind_ == Kind::kGreaterEq ? lhs >= value_ : lhs <= value_;
    }
  }
  return false;
}

std::string Filter::ToString() const {
  switch (kind_) {
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      out += (kind_ == Kind::kAnd) ? '&' : '|';
      for (const Filter& child : children_) out += child.ToString();
      out += ")";
      return out;
    }
    case Kind::kNot:
      return "(!" + children_.front().ToString() + ")";
    case Kind::kPresence:
      return "(" + attr_ + "=*)";
    case Kind::kEquality:
      return "(" + attr_ + "=" + value_ + ")";
    case Kind::kGreaterEq:
      return "(" + attr_ + ">=" + value_ + ")";
    case Kind::kLessEq:
      return "(" + attr_ + "<=" + value_ + ")";
  }
  return "";
}

}  // namespace udr::ldap
