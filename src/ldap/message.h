// LDAP protocol operations and result codes (RFC 2251 subset relevant to the
// UDR northbound interface). Wire encoding (BER) is out of scope; messages
// are plain structs handed between simulated components.

#ifndef UDR_LDAP_MESSAGE_H_
#define UDR_LDAP_MESSAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "ldap/dn.h"
#include "storage/record.h"

namespace udr::ldap {

/// LDAP operation kinds supported by the UDR.
enum class LdapOp : uint8_t {
  kSearch = 0,
  kAdd = 1,
  kModify = 2,
  kDelete = 3,
  kCompare = 4,
};

const char* LdapOpName(LdapOp op);

/// RFC 2251 §4.1.10 result codes (subset).
enum class LdapResultCode : int {
  kSuccess = 0,
  kOperationsError = 1,
  kProtocolError = 2,
  kTimeLimitExceeded = 3,
  kCompareFalse = 5,
  kCompareTrue = 6,
  kNoSuchObject = 32,
  kBusy = 51,
  kUnavailable = 52,
  kUnwillingToPerform = 53,
  kEntryAlreadyExists = 68,
  kOther = 80,
};

const char* LdapResultCodeName(LdapResultCode code);

/// Maps an internal Status to the closest LDAP result code.
LdapResultCode StatusToLdapCode(const Status& status);

/// RFC 2251 modify operation types.
enum class ModType : uint8_t { kAdd = 0, kDelete = 1, kReplace = 2 };

/// One modification within a Modify request.
struct Modification {
  ModType type = ModType::kReplace;
  std::string attr;
  storage::Value value;  ///< Ignored for kDelete.
};

/// Search scope (RFC 2251 §4.5.1).
enum class SearchScope : uint8_t { kBaseObject = 0, kSingleLevel = 1 };

/// A northbound request to the UDR.
struct LdapRequest {
  LdapOp op = LdapOp::kSearch;
  Dn dn;                                ///< Target entry / search base.
  SearchScope scope = SearchScope::kBaseObject;
  std::string filter = "(objectclass=*)";
  std::vector<std::string> requested_attrs;  ///< Empty = all.
  std::vector<Modification> mods;       ///< Modify payload.
  storage::Record add_entry;            ///< Add payload.
  std::string compare_attr;             ///< Compare payload.
  std::string compare_value;
  /// Proprietary control: route reads to the master copy only. Set by the
  /// Provisioning System (paper §3.3.3 decision 2); application front-ends
  /// leave it false and may be served by slave copies (§3.3.2 decision 2).
  bool master_only = false;
};

/// One entry returned by a search.
struct SearchEntry {
  Dn dn;
  storage::Record record;
};

/// Response to a northbound request.
struct LdapResult {
  LdapResultCode code = LdapResultCode::kSuccess;
  std::string diagnostic;
  std::vector<SearchEntry> entries;
  MicroDuration latency = 0;  ///< Client-observed latency.
  bool stale = false;         ///< Read served from a lagging slave copy.

  bool ok() const {
    return code == LdapResultCode::kSuccess ||
           code == LdapResultCode::kCompareTrue ||
           code == LdapResultCode::kCompareFalse;
  }
};

/// Response to a multi-op request (one signaling event's worth of LDAP ops
/// shipped as a single northbound message, paper §2.2).
struct LdapBatchResult {
  std::vector<LdapResult> results;  ///< 1:1 with the submitted requests.
  /// Modelled end-to-end latency of the whole batch (one client round trip;
  /// per-result latencies carry only each op's own service share). Includes
  /// `queue_delay` when the event sat in a coalescing window.
  MicroDuration latency = 0;
  /// Share of `latency` spent parked in the PoA's cross-event dispatch
  /// window waiting for it to close (0 on the inline path).
  MicroDuration queue_delay = 0;
  int partition_groups = 0;  ///< Partition fan-out of the batch dispatch.
  int bypass_hits = 0;       ///< Ops served by the hash-routed fast path.
  int coalesced_events = 0;  ///< Events sharing the dispatch window flush.

  bool ok() const {
    for (const LdapResult& r : results) {
      if (!r.ok()) return false;
    }
    return true;
  }
  int failed_ops() const {
    int n = 0;
    for (const LdapResult& r : results) {
      if (!r.ok()) ++n;
    }
    return n;
  }
};

/// Interface implemented by the UDR data path; the stateless LDAP server
/// farm delegates request semantics here.
class LdapBackend {
 public:
  virtual ~LdapBackend() = default;
  /// Processes one request originating at `client_site`.
  virtual LdapResult Process(const LdapRequest& request,
                             uint32_t client_site) = 0;

  /// Processes a multi-op request. The default realization degrades to
  /// sequential per-op Process calls (no batching gain); the UDR data path
  /// overrides it with the staged batch pipeline.
  virtual LdapBatchResult ProcessBatch(const std::vector<LdapRequest>& requests,
                                       uint32_t client_site);

  /// Enqueues a multi-op request for deferred execution and returns a handle
  /// for collecting the result. The default realization executes immediately
  /// (ProcessBatch) and stashes the result — no coalescing gain; the UDR
  /// data path overrides it to park the event in the PoA's cross-event
  /// dispatch window.
  virtual uint64_t EnqueueBatch(const std::vector<LdapRequest>& requests,
                                uint32_t client_site);

  /// Claims the result of an enqueued request; nullopt while it is still
  /// pending (its dispatch window has not closed). A claimed result is
  /// removed from the backend.
  virtual std::optional<LdapBatchResult> TakeBatchResult(uint64_t handle);

 protected:
  /// Allocates a backend-unique enqueue handle (shared by overrides so a
  /// handle never collides between realizations of the enqueue path).
  uint64_t NextEnqueueHandle() { return next_enqueue_handle_++; }

 private:
  uint64_t next_enqueue_handle_ = 1;
  std::unordered_map<uint64_t, LdapBatchResult> enqueued_results_;
};

}  // namespace udr::ldap

#endif  // UDR_LDAP_MESSAGE_H_
