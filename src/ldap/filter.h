// LDAP search filters (RFC 4515 string representation, common subset):
// equality (attr=value), presence (attr=*), AND (&...), OR (|...), NOT (!...),
// plus >= and <= on integer attributes.

#ifndef UDR_LDAP_FILTER_H_
#define UDR_LDAP_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/record.h"

namespace udr::ldap {

/// Parsed filter tree; evaluates against storage records.
class Filter {
 public:
  enum class Kind { kEquality, kPresence, kGreaterEq, kLessEq, kAnd, kOr, kNot };

  /// Parses a filter string like "(&(msisdn=+34600)(barred=false))".
  static StatusOr<Filter> Parse(const std::string& text);

  /// Convenience equality filter.
  static Filter Eq(std::string attr, std::string value);
  /// Convenience presence filter.
  static Filter Present(std::string attr);

  /// Evaluates the filter against a record's attributes. Values compare by
  /// their string rendering, except >=/<= which compare as integers when the
  /// attribute holds an int.
  bool Matches(const storage::Record& record) const;

  Kind kind() const { return kind_; }
  const std::string& attr() const { return attr_; }
  const std::string& value() const { return value_; }
  const std::vector<Filter>& children() const { return children_; }

  /// Serializes back to RFC 4515 form.
  std::string ToString() const;

 private:
  Filter() = default;

  static StatusOr<Filter> ParseInner(std::string_view text, size_t* pos);

  Kind kind_ = Kind::kPresence;
  std::string attr_;
  std::string value_;
  std::vector<Filter> children_;
};

}  // namespace udr::ldap

#endif  // UDR_LDAP_FILTER_H_
