#include "ldap/dn.h"

#include "common/strings.h"

namespace udr::ldap {

StatusOr<Dn> Dn::Parse(const std::string& text) {
  std::vector<Rdn> rdns;
  std::string current;
  std::vector<std::string> parts;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\\' && i + 1 < text.size() && text[i + 1] == ',') {
      current.push_back(',');
      ++i;
    } else if (c == ',') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);

  for (const std::string& part : parts) {
    std::string_view trimmed = Trim(part);
    if (trimmed.empty()) {
      if (parts.size() == 1) return Dn();  // Empty DN (root DSE).
      return Status::InvalidArgument("empty RDN in DN: " + text);
    }
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("malformed RDN '" + std::string(trimmed) +
                                     "' in DN: " + text);
    }
    Rdn rdn;
    rdn.attr = ToLower(Trim(trimmed.substr(0, eq)));
    rdn.value = std::string(Trim(trimmed.substr(eq + 1)));
    if (rdn.value.empty()) {
      return Status::InvalidArgument("empty value in RDN '" +
                                     std::string(trimmed) + "'");
    }
    rdns.push_back(std::move(rdn));
  }
  return Dn(std::move(rdns));
}

std::string Dn::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(rdns_.size());
  for (const Rdn& rdn : rdns_) {
    std::string value;
    for (char c : rdn.value) {
      if (c == ',') value += "\\,";
      else value.push_back(c);
    }
    parts.push_back(rdn.attr + "=" + value);
  }
  return Join(parts, ",");
}

Dn Dn::Parent() const {
  if (rdns_.empty()) return Dn();
  return Dn(std::vector<Rdn>(rdns_.begin() + 1, rdns_.end()));
}

Dn Dn::Child(std::string attr, std::string value) const {
  std::vector<Rdn> rdns;
  rdns.reserve(rdns_.size() + 1);
  rdns.push_back(Rdn{ToLower(attr), std::move(value)});
  rdns.insert(rdns.end(), rdns_.begin(), rdns_.end());
  return Dn(std::move(rdns));
}

bool Dn::IsWithin(const Dn& suffix) const {
  if (suffix.rdns_.size() > rdns_.size()) return false;
  size_t offset = rdns_.size() - suffix.rdns_.size();
  for (size_t i = 0; i < suffix.rdns_.size(); ++i) {
    if (!(rdns_[offset + i] == suffix.rdns_[i])) return false;
  }
  return true;
}

Dn SubscribersBase() {
  return Dn({Rdn{"ou", "subscribers"}, Rdn{"dc", "udr"}});
}

Dn SubscriberDn(const std::string& identity_attr, const std::string& value) {
  return SubscribersBase().Child(identity_attr, value);
}

}  // namespace udr::ldap
