#include "ldap/message.h"

namespace udr::ldap {

const char* LdapOpName(LdapOp op) {
  switch (op) {
    case LdapOp::kSearch:
      return "Search";
    case LdapOp::kAdd:
      return "Add";
    case LdapOp::kModify:
      return "Modify";
    case LdapOp::kDelete:
      return "Delete";
    case LdapOp::kCompare:
      return "Compare";
  }
  return "?";
}

const char* LdapResultCodeName(LdapResultCode code) {
  switch (code) {
    case LdapResultCode::kSuccess:
      return "success";
    case LdapResultCode::kOperationsError:
      return "operationsError";
    case LdapResultCode::kProtocolError:
      return "protocolError";
    case LdapResultCode::kTimeLimitExceeded:
      return "timeLimitExceeded";
    case LdapResultCode::kCompareFalse:
      return "compareFalse";
    case LdapResultCode::kCompareTrue:
      return "compareTrue";
    case LdapResultCode::kNoSuchObject:
      return "noSuchObject";
    case LdapResultCode::kBusy:
      return "busy";
    case LdapResultCode::kUnavailable:
      return "unavailable";
    case LdapResultCode::kUnwillingToPerform:
      return "unwillingToPerform";
    case LdapResultCode::kEntryAlreadyExists:
      return "entryAlreadyExists";
    case LdapResultCode::kOther:
      return "other";
  }
  return "?";
}

LdapBatchResult LdapBackend::ProcessBatch(
    const std::vector<LdapRequest>& requests, uint32_t client_site) {
  LdapBatchResult out;
  out.results.reserve(requests.size());
  for (const LdapRequest& req : requests) {
    LdapResult r = Process(req, client_site);
    out.latency += r.latency;
    out.results.push_back(std::move(r));
  }
  return out;
}

uint64_t LdapBackend::EnqueueBatch(const std::vector<LdapRequest>& requests,
                                   uint32_t client_site) {
  const uint64_t handle = NextEnqueueHandle();
  enqueued_results_.emplace(handle, ProcessBatch(requests, client_site));
  return handle;
}

std::optional<LdapBatchResult> LdapBackend::TakeBatchResult(uint64_t handle) {
  auto it = enqueued_results_.find(handle);
  if (it == enqueued_results_.end()) return std::nullopt;
  LdapBatchResult out = std::move(it->second);
  enqueued_results_.erase(it);
  return out;
}

LdapResultCode StatusToLdapCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return LdapResultCode::kSuccess;
    case StatusCode::kNotFound:
      return LdapResultCode::kNoSuchObject;
    case StatusCode::kAlreadyExists:
      return LdapResultCode::kEntryAlreadyExists;
    case StatusCode::kInvalidArgument:
      return LdapResultCode::kProtocolError;
    case StatusCode::kUnavailable:
      return LdapResultCode::kUnavailable;
    case StatusCode::kAborted:
      return LdapResultCode::kBusy;
    case StatusCode::kDeadlineExceeded:
      return LdapResultCode::kTimeLimitExceeded;
    case StatusCode::kFailedPrecondition:
      return LdapResultCode::kUnwillingToPerform;
    case StatusCode::kResourceExhausted:
      return LdapResultCode::kUnwillingToPerform;
    default:
      return LdapResultCode::kOther;
  }
}

}  // namespace udr::ldap
