// Quickstart: deploy a 3-site UDR, provision a subscriber through the PS,
// run a few network procedures through the front-ends, then watch what a
// network partition does to FE vs PS traffic (the paper's core C-vs-A&P
// story, §3.2/§4.1).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "common/time.h"
#include "telecom/front_end.h"
#include "telecom/provisioning.h"
#include "workload/testbed.h"

using namespace udr;

int main() {
  std::printf("=== UDR quickstart: 3 sites, master/slave replication ===\n\n");

  // 1. Deploy: one blade cluster per site (Madrid / Frankfurt / Stockholm),
  //    2 storage elements and 2 LDAP servers each, replication factor 3.
  workload::TestbedOptions opts;
  opts.sites = 3;
  opts.udr.replication_factor = 3;
  opts.udr.se_per_cluster = 2;
  opts.udr.ldap_per_cluster = 2;
  workload::Testbed bed(opts);
  bed.network().mutable_topology().SetSiteName(0, "madrid");
  bed.network().mutable_topology().SetSiteName(1, "frankfurt");
  bed.network().mutable_topology().SetSiteName(2, "stockholm");

  std::printf("deployed %zu clusters, %d storage elements, %zu partitions\n",
              bed.udr().cluster_count(), bed.udr().TotalStorageElements(),
              bed.udr().partition_count());

  // 2. Provision one subscriber through the Provisioning System (one LDAP
  //    Add == one ACID transaction, the UDC promise of Figure 4).
  telecom::ProvisioningSystem ps({/*site=*/0, /*retries=*/0}, &bed.udr(),
                                 &bed.factory());
  telecom::ProcedureResult provisioned = ps.Provision(/*index=*/0);
  telecom::Subscriber alice = bed.factory().Make(0);
  std::printf("\nprovisioned %s (imsi=%s, msisdn=%s): %s in %s\n",
              "subscriber #0", alice.imsi.c_str(), alice.msisdn.c_str(),
              provisioned.status.ToString().c_str(),
              FormatDuration(provisioned.latency).c_str());

  // 3. Network procedures from a front-end co-located with the Madrid PoA.
  telecom::HlrFe hlr_fe(/*site=*/0, &bed.udr());
  auto auth = hlr_fe.Authenticate(alice.ImsiId());
  std::printf("authenticate:      %s, %d LDAP ops, %s\n",
              auth.status.ToString().c_str(), auth.ldap_ops,
              FormatDuration(auth.latency).c_str());
  auto attach = hlr_fe.UpdateLocation(alice.ImsiId(), "vlr-madrid-7", 714);
  std::printf("location update:   %s, %d LDAP ops, %s\n",
              attach.status.ToString().c_str(), attach.ldap_ops,
              FormatDuration(attach.latency).c_str());
  auto call = hlr_fe.SendRoutingInfo(alice.MsisdnId());
  std::printf("call setup (SRI):  %s, %d LDAP ops, %s  <= 10ms target\n",
              call.status.ToString().c_str(), call.ldap_ops,
              FormatDuration(call.latency).c_str());

  // 4. Same procedures from Stockholm while Alice's data is mastered in
  //    Madrid: reads may be served by the local slave copy (fast), writes
  //    must cross the backbone to the master copy (§3.3.2).
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();
  telecom::HlrFe remote_fe(/*site=*/2, &bed.udr());
  auto remote_read = remote_fe.Authenticate(alice.ImsiId());
  auto remote_write = remote_fe.UpdateLocation(alice.ImsiId(), "vlr-sth-1", 99);
  std::printf("\nroaming subscriber served from stockholm:\n");
  std::printf("  read  (slave-local): %s\n",
              FormatDuration(remote_read.latency).c_str());
  std::printf("  write (to master):   %s\n",
              FormatDuration(remote_write.latency).c_str());

  // 5. Partition Madrid away from the other two sites for 30 seconds and
  //    observe the paper's complaint: FE reads keep working everywhere, but
  //    PS writes fail whenever the master copy is on the other side.
  MicroTime t0 = bed.clock().Now();
  bed.network().partitions().CutBetween({0}, {1, 2}, t0, t0 + Seconds(30));
  bed.clock().Advance(Seconds(1));  // 1s into the partition.

  telecom::HlrFe frankfurt_fe(/*site=*/1, &bed.udr());
  auto read_during = frankfurt_fe.Authenticate(alice.ImsiId());
  telecom::ProvisioningSystem remote_ps({/*site=*/1, 0}, &bed.udr(),
                                        &bed.factory());
  auto write_during = remote_ps.SetPremiumBarring(0, true);
  std::printf("\nduring a 30s partition (master in madrid, client in frankfurt):\n");
  std::printf("  FE read:  %s (served stale=%s)\n",
              read_during.status.ToString().c_str(),
              read_during.any_stale ? "yes" : "no");
  std::printf("  PS write: %s   <= favoring Consistency over Availability\n",
              write_during.status.ToString().c_str());

  // 6. After the partition heals, everything flows again.
  bed.clock().AdvanceTo(t0 + Seconds(31));
  auto write_after = remote_ps.SetPremiumBarring(0, true);
  std::printf("\nafter the partition heals:\n  PS write: %s in %s\n",
              write_after.status.ToString().c_str(),
              FormatDuration(write_after.latency).c_str());

  std::printf("\ndone.\n");
  return 0;
}
