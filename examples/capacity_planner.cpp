// Example: capacity planning with the paper's §3.5 model.
//
// A deployment-engineering utility a service provider would actually use:
// given a subscriber base and a busy-hour traffic profile, derive how many
// storage elements, blade clusters and LDAP servers the UDR NF needs, check
// the result against the paper's architectural limits, then deploy a scaled
// mini-replica in the simulator and verify the OSS view agrees.
//
// Run: ./build/examples/capacity_planner

#include <cstdio>

#include "udr/capacity_model.h"
#include "udr/oam.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

struct Plan {
  int64_t subscribers;
  double procedures_per_sub_busy_hour;  // Network procedures per sub per hour.
  double ldap_ops_per_procedure;
};

void PlanDeployment(const Plan& plan) {
  udrnf::CapacityModel model;

  double busy_hour_ops = static_cast<double>(plan.subscribers) *
                         plan.procedures_per_sub_busy_hour *
                         plan.ldap_ops_per_procedure / 3600.0;

  int64_t se_needed =
      (plan.subscribers + model.subscribers_per_se - 1) /
      model.subscribers_per_se;
  int64_t ldap_needed = static_cast<int64_t>(
      busy_hour_ops / static_cast<double>(model.ldap_ops_per_server)) + 1;
  int64_t clusters_for_storage =
      (se_needed + model.se_per_cluster_limit - 1) / model.se_per_cluster_limit;
  int64_t clusters_for_ldap =
      (ldap_needed + model.ldap_servers_per_cluster_limit - 1) /
      model.ldap_servers_per_cluster_limit;
  int64_t clusters = std::max(clusters_for_storage, clusters_for_ldap);

  std::printf("subscriber base: %lld, busy hour: %.1f proc/sub/h x %.1f "
              "ops/proc = %.0f LDAP ops/s\n",
              static_cast<long long>(plan.subscribers),
              plan.procedures_per_sub_busy_hour, plan.ldap_ops_per_procedure,
              busy_hour_ops);
  std::printf("  storage elements needed : %lld (2e6 subs each)\n",
              static_cast<long long>(se_needed));
  std::printf("  LDAP servers needed     : %lld (1e6 ops/s each)\n",
              static_cast<long long>(ldap_needed));
  std::printf("  blade clusters          : %lld (max(%lld storage, %lld ldap))\n",
              static_cast<long long>(clusters),
              static_cast<long long>(clusters_for_storage),
              static_cast<long long>(clusters_for_ldap));
  bool fits = se_needed <= model.se_per_nf_limit &&
              clusters <= model.clusters_per_nf_limit;
  std::printf("  fits one UDR NF?        : %s (limits: 256 SE, 256 clusters)\n\n",
              fits ? "YES" : "NO - split across NFs");
}

}  // namespace

int main() {
  std::printf("=== UDR capacity planner (paper §3.5 model) ===\n\n");

  std::printf("--- small country operator ---\n");
  PlanDeployment({5'000'000, 8.0, 2.0});

  std::printf("--- large European operator ---\n");
  PlanDeployment({60'000'000, 10.0, 2.5});

  std::printf("--- the paper's ceiling: half of mainland China ---\n");
  PlanDeployment({512'000'000, 12.0, 2.0});

  std::printf("--- trans-continental merger (footnote 7) ---\n");
  PlanDeployment({700'000'000, 12.0, 2.0});

  // Deploy a scaled mini-replica (1:1,000,000) and let the OSS verify it.
  std::printf("--- simulator cross-check: 3-site mini-NF ---\n");
  workload::TestbedOptions o;
  o.sites = 3;
  o.udr.se_per_cluster = 2;
  o.udr.ldap_per_cluster = 2;
  o.subscribers = 60;
  o.pin_home_sites = true;
  workload::Testbed bed(o);
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();

  udrnf::OamSystem oam(&bed.udr());
  udrnf::Inventory inv = oam.GetInventory();
  std::printf("deployed: %d clusters, %d SEs, %d LDAP servers, %d partitions, "
              "%lld subscribers\n",
              inv.clusters, inv.storage_elements, inv.ldap_servers,
              inv.partitions, static_cast<long long>(inv.subscribers));
  std::printf("aggregate LDAP capacity: %lld ops/s\n",
              static_cast<long long>(bed.udr().TotalLdapOpsPerSecond()));

  std::vector<location::Identity> sample;
  for (uint64_t i = 0; i < 60; ++i) {
    sample.push_back(bed.factory().Make(i).ImsiId());
  }
  auto kpi = oam.SampleAvailability(sample, {0, 1, 2});
  std::printf("availability KPI: %lld/%lld subscribers reachable (%.3f%%)\n",
              static_cast<long long>(kpi.reachable),
              static_cast<long long>(kpi.subscribers_sampled),
              kpi.Availability() * 100.0);
  std::printf("alarms on scan: %d\n", oam.Scan());

  std::printf("\ndone.\n");
  return 0;
}
