// Example: a week in the life of a roaming subscriber.
//
// Shows selective placement (§3.5) doing its job: Maria's subscription is
// pinned to her home region (site 0, "madrid"). While she is home, every
// network procedure is served on the local LAN. When she roams to site 2
// ("stockholm"), reads are still served by the local slave copy of her data
// but location updates must cross the backbone to the master copy — and a
// backbone partition during her trip splits the difference: calls keep
// working, location updates fail until it heals.
//
// Run: ./build/examples/roaming_subscriber

#include <cstdio>

#include "telecom/front_end.h"
#include "telecom/provisioning.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

void Show(const char* what, const telecom::ProcedureResult& r) {
  std::printf("  %-38s %-14s %s%s\n", what,
              r.ok() ? FormatDuration(r.latency).c_str() : "FAILED",
              r.ok() ? "" : r.status.ToString().c_str(),
              r.any_stale ? "  [stale read]" : "");
}

}  // namespace

int main() {
  std::printf("=== Roaming subscriber: selective placement at work ===\n\n");

  workload::TestbedOptions opts;
  opts.sites = 3;
  opts.subscribers = 30;
  opts.pin_home_sites = true;  // Subscriber i pinned to site i%3.
  workload::Testbed bed(opts);
  bed.network().mutable_topology().SetSiteName(0, "madrid");
  bed.network().mutable_topology().SetSiteName(2, "stockholm");
  bed.clock().Advance(Seconds(1));
  bed.udr().CatchUpAllPartitions();

  telecom::Subscriber maria = bed.factory().Make(0);  // Home site 0.
  telecom::HlrFe madrid(0, &bed.udr());
  telecom::HssFe madrid_ims(0, &bed.udr());
  telecom::HlrFe stockholm(2, &bed.udr());

  std::printf("monday, maria at home in madrid (master copy is local):\n");
  Show("attach (auth + location update)", madrid.Authenticate(maria.ImsiId()));
  Show("location update", madrid.UpdateLocation(maria.ImsiId(), "vlr-mad-1", 714));
  Show("incoming call (SRI)", madrid.SendRoutingInfo(maria.MsisdnId()));
  Show("IMS registration", madrid_ims.ImsRegister(maria.ImpuId(), "scscf-mad"));

  bed.clock().Advance(Hours(24));
  bed.udr().CatchUpAllPartitions();

  std::printf("\ntuesday, maria lands in stockholm (roaming):\n");
  Show("auth (read: local slave copy)", stockholm.Authenticate(maria.ImsiId()));
  Show("location update (write: to madrid)",
       stockholm.UpdateLocation(maria.ImsiId(), "vlr-sth-9", 4242));
  Show("incoming call (SRI)", stockholm.SendRoutingInfo(maria.MsisdnId()));

  std::printf("\nwednesday, a 2-minute backbone partition madrid<->stockholm:\n");
  MicroTime t0 = bed.clock().Now();
  bed.network().partitions().CutLink(0, 2, t0, t0 + Minutes(2));
  bed.clock().Advance(Seconds(10));
  Show("auth during partition (local read)",
       stockholm.Authenticate(maria.ImsiId()));
  Show("incoming call during partition",
       stockholm.SendRoutingInfo(maria.MsisdnId()));
  Show("location update during partition",
       stockholm.UpdateLocation(maria.ImsiId(), "vlr-sth-9", 4243));
  std::printf("  => reads survive on the slave copy; the write needs the\n"
              "     master in madrid (C over A on partition, §3.2)\n");

  bed.clock().AdvanceTo(t0 + Minutes(2) + Seconds(1));
  std::printf("\npartition healed:\n");
  Show("location update retry",
       stockholm.UpdateLocation(maria.ImsiId(), "vlr-sth-9", 4243));

  // Contrast with an unpinned neighbour whose master landed abroad.
  std::printf("\nfor contrast, pablo (home madrid, master pinned to madrid)\n"
              "vs an unpinned deployment where masters scatter randomly:\n");
  workload::TestbedOptions unpinned = opts;
  unpinned.pin_home_sites = false;
  workload::Testbed bed2(unpinned);
  bed2.clock().Advance(Seconds(1));
  telecom::HlrFe madrid2(0, &bed2.udr());
  int local = 0, remote = 0;
  for (uint64_t i = 0; i < 30; ++i) {
    auto loc = bed2.udr().AuthoritativeLookup(bed2.factory().Make(i).ImsiId());
    if (!loc.ok()) continue;
    if (bed2.udr().partition(loc->partition)->master_site() == 0) ++local;
    else ++remote;
  }
  std::printf("  unpinned placement: %d/30 masters local to madrid, %d remote\n"
              "  => every remote one pays the backbone on every write (H-R)\n",
              local, remote);

  std::printf("\ndone.\n");
  return 0;
}
