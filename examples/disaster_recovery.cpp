// Example: disaster recovery drill.
//
// Walks an operator through what the paper's durability choices mean when a
// storage element actually dies (§3.1, §3.3.1, §4.2, §5):
//   1. a slave SE fails — nobody notices (redundancy absorbs it);
//   2. the MASTER SE fails right after a commit — failover restores service
//      but the last acknowledged transactions are gone (async replication);
//   3. the same crash under dual-in-sequence commits — nothing is lost,
//      commits got slower;
//   4. local-disk checkpoint recovery of a standalone SE: everything after
//      the last checkpoint is lost unless a replica had it.
//
// Run: ./build/examples/disaster_recovery

#include <cstdio>

#include "telecom/front_end.h"
#include "telecom/provisioning.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

workload::TestbedOptions Options(replication::SyncMode mode) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.subscribers = 10;
  o.pin_home_sites = true;
  o.udr.sync_mode = mode;
  return o;
}

/// Returns the premium-barring flag currently stored for subscriber 0.
std::string BarringOf(workload::Testbed& bed) {
  ldap::LdapRequest req;
  req.op = ldap::LdapOp::kSearch;
  req.dn = ldap::SubscriberDn("imsi", bed.factory().Make(0).imsi);
  req.master_only = true;
  auto r = bed.udr().Submit(req, 0);
  if (!r.ok() || r.entries.empty()) return "<unavailable>";
  auto v = r.entries[0].record.Get(telecom::attr::kOdbPremium);
  return v.has_value() ? storage::ValueToString(*v) : "<missing>";
}

}  // namespace

int main() {
  std::printf("=== Disaster recovery drill ===\n\n");

  // --- 1. Slave SE failure -----------------------------------------------------
  {
    workload::Testbed bed(Options(replication::SyncMode::kAsync));
    bed.clock().Advance(Seconds(1));
    bed.udr().CatchUpAllPartitions();
    auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(0).ImsiId());
    auto* rs = bed.udr().partition(loc->partition);
    rs->CrashReplica((rs->master_id() + 1) % 3);  // A slave copy dies.
    telecom::HlrFe fe(0, &bed.udr());
    auto r = fe.Authenticate(bed.factory().Make(0).ImsiId());
    std::printf("1. slave SE crash:    service %s (%s) — redundancy absorbed it\n",
                r.ok() ? "OK" : "LOST", FormatDuration(r.latency).c_str());
  }

  // --- 2. Master SE failure, async replication ---------------------------------
  {
    workload::Testbed bed(Options(replication::SyncMode::kAsync));
    bed.clock().Advance(Seconds(1));
    bed.udr().CatchUpAllPartitions();
    telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
    (void)ps.SetPremiumBarring(0, true);  // Acknowledged to the operator!
    auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(0).ImsiId());
    auto* rs = bed.udr().partition(loc->partition);
    rs->CrashReplica(rs->master_id());    // Dies before shipping the entry.
    bed.clock().Advance(Seconds(10));     // Failover detection + promote.
    std::printf("2. master SE crash (ASYNC):    barring flag now '%s' — the\n"
                "   acknowledged write was lost in the failover (§3.3.1)\n",
                BarringOf(bed).c_str());
  }

  // --- 3. Same crash, dual-in-sequence -----------------------------------------
  {
    workload::Testbed bed(Options(replication::SyncMode::kDualSequence));
    bed.clock().Advance(Seconds(1));
    bed.udr().CatchUpAllPartitions();
    telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
    auto w = ps.SetPremiumBarring(0, true);
    auto loc = bed.udr().AuthoritativeLookup(bed.factory().Make(0).ImsiId());
    auto* rs = bed.udr().partition(loc->partition);
    rs->CrashReplica(rs->master_id());
    bed.clock().Advance(Seconds(10));
    std::printf("3. master SE crash (DUAL-SEQ): barring flag now '%s' — the\n"
                "   commit had already reached a slave (cost: %s per write)\n",
                BarringOf(bed).c_str(), FormatDuration(w.latency).c_str());
  }

  // --- 4. Standalone SE: checkpoint recovery -----------------------------------
  {
    sim::SimClock clock;
    storage::StorageElementConfig cfg;
    cfg.name = "standalone-se";
    cfg.checkpoint_period = Minutes(5);
    storage::StorageElement se(cfg, &clock);
    // Commits at t=1min (inside checkpoint 0..5min) and t=6min (after the
    // 5-min checkpoint).
    clock.AdvanceTo(Minutes(1));
    {
      auto txn = se.Begin();
      (void)txn.SetAttribute(1, "cfu-number", std::string("+34911"));
      (void)txn.Commit(clock.Now());
    }
    clock.AdvanceTo(Minutes(6));
    {
      auto txn = se.Begin();
      (void)txn.SetAttribute(2, "cfu-number", std::string("+34922"));
      (void)txn.Commit(clock.Now());
    }
    clock.AdvanceTo(Minutes(8));
    auto rec = se.CrashAndRecoverLocally(clock.Now());
    std::printf("4. standalone SE crash at t=8min (checkpoint every 5min):\n"
                "   recovered to seq %llu of %llu — lost %lld txns spanning %s\n"
                "   record 1 (pre-checkpoint): %s, record 2 (post): %s\n",
                static_cast<unsigned long long>(rec.recovered_seq),
                static_cast<unsigned long long>(rec.last_seq_before_crash),
                static_cast<long long>(rec.lost_transactions),
                FormatDuration(rec.data_loss_window).c_str(),
                se.store().Contains(1) ? "survived" : "lost",
                se.store().Contains(2) ? "survived" : "lost");
  }

  std::printf("\ndone.\n");
  return 0;
}
