// Example: a provisioning day at a service provider.
//
// Models the §3.3.3/§4.1 story end to end:
//   1. steady drip of subscription activations through the PS;
//   2. an overnight batch of 5,000 activations at 50 ops/s;
//   3. the same batch re-run with a 30-second backbone glitch in the middle
//      — under the paper's consistency-first design it aborts, and the
//      operator pays manual interventions;
//   4. the §5 evolution (multi-master on partition): the batch completes
//      and the divergence is merged by the consistency-restoration process.
//
// Run: ./build/examples/provisioning_day

#include <cstdio>

#include "telecom/provisioning.h"
#include "workload/testbed.h"

using namespace udr;

namespace {

workload::TestbedOptions Options(replication::PartitionMode mode) {
  workload::TestbedOptions o;
  o.sites = 3;
  o.udr.partition_mode = mode;
  return o;
}

void PrintBatch(const char* label, const telecom::BatchReport& r) {
  std::printf("%-34s attempted=%-5lld ok=%-5lld failed=%-4lld skipped=%-5lld "
              "%s manual=%lld\n",
              label, static_cast<long long>(r.attempted),
              static_cast<long long>(r.succeeded),
              static_cast<long long>(r.failed),
              static_cast<long long>(r.skipped),
              r.aborted ? "ABORTED" : "completed",
              static_cast<long long>(r.manual_interventions()));
}

}  // namespace

int main() {
  std::printf("=== Provisioning day: batches, glitches and the CAP price ===\n\n");

  // --- 1. Steady activations --------------------------------------------------
  {
    workload::Testbed bed(
        Options(replication::PartitionMode::kPreferConsistency));
    telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
    int ok = 0;
    for (uint64_t i = 0; i < 20; ++i) {
      if (ps.Provision(i).ok()) ++ok;
      bed.clock().Advance(Seconds(1));
    }
    std::printf("steady drip: %d/20 walk-out-of-the-shop activations ok\n\n",
                ok);
  }

  // --- 2. Clean overnight batch ----------------------------------------------
  {
    workload::Testbed bed(
        Options(replication::PartitionMode::kPreferConsistency));
    telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
    auto report = ps.RunBatch(0, 5000, 50.0, /*stop_on_failure=*/true);
    PrintBatch("clean batch (5,000 @ 50/s):", report);
  }

  // --- 3. Same batch, 30s glitch, consistency-first ---------------------------
  {
    workload::Testbed bed(
        Options(replication::PartitionMode::kPreferConsistency));
    telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
    MicroTime glitch = bed.clock().Now() + Seconds(40);
    bed.network().partitions().CutBetween({0}, {1, 2}, glitch,
                                          glitch + Seconds(30));
    auto report = ps.RunBatch(0, 5000, 50.0, /*stop_on_failure=*/true);
    PrintBatch("same batch + 30s glitch (PC):", report);
    std::printf("  => \"a network glitch as short as 30 seconds may cause a\n"
                "      batch that's been running for hours to fail\" (§4.1)\n");
  }

  // --- 4. The §5 evolution: multi-master keeps the batch alive ----------------
  {
    workload::Testbed bed(
        Options(replication::PartitionMode::kPreferAvailability));
    telecom::ProvisioningSystem ps({0, 0}, &bed.udr(), &bed.factory());
    MicroTime glitch = bed.clock().Now() + Seconds(40);
    bed.network().partitions().CutBetween({0}, {1, 2}, glitch,
                                          glitch + Seconds(30));
    auto report = ps.RunBatch(0, 5000, 50.0, /*stop_on_failure=*/true);
    PrintBatch("same batch + 30s glitch (PA):", report);

    auto restoration = bed.udr().RestoreAllPartitions();
    std::printf("  consistency restoration: %lld divergent txns merged "
                "(%lld ops applied, %lld conflicts, %lld dropped by LWW)\n",
                static_cast<long long>(restoration.divergent_entries),
                static_cast<long long>(restoration.applied_ops),
                static_cast<long long>(restoration.conflicting_ops),
                static_cast<long long>(restoration.dropped_ops));
    std::printf("  => availability on partition bought with a merge pass "
                "after healing (§5)\n");
  }

  std::printf("\ndone.\n");
  return 0;
}
